"""Functional shuffle across memory partitions.

Given per-source relations and each tuple's destination partition, the
engine moves real tuples: it computes per-(source, destination) streams,
interleaves them per the network model, and materializes each
destination buffer either

- **addressed**: every tuple lands at the exact offset the histogram
  prefix sums assigned (source order preserved inside each source's
  slice), or
- **permutable**: tuples land at the destination's sequential tail in
  arrival order, via a :class:`repro.memctrl.permutable.PermutableWriteEngine`.

Both produce the same *multiset* per destination -- the permutability
guarantee -- but different orders and radically different DRAM write
patterns.  The engine also emits per-destination arrival traces
(vault-relative addresses) so the event-accurate DRAM model can replay
the traffic, and drives the :class:`ShuffleBarrier` handshake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytics.histogram import build_histogram, source_write_offsets
from repro.analytics.tuples import TUPLE_B, TUPLE_DTYPE, Relation
from repro.columnar.soa import SegmentedColumns
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.protocol import (
    DeliverySession,
    FaultTolerantShuffleBarrier,
    ResilienceStats,
)
from repro.memctrl.permutable import (
    PermutableRegionConfig,
    PermutableWriteEngine,
    ShuffleBarrier,
)
from repro.shuffle.interleave import (
    ArrivalOrder,
    round_robin_interleave,
    stream_starts,
)
from repro.telemetry import span as _span


def _grouping_sort(code: np.ndarray, bound: int) -> np.ndarray:
    """Stable argsort of non-negative integer grouping codes.

    Codes bounded by 16 bits take numpy's radix path (O(n), ~5x faster
    than the comparison sort `np.lexsort` would run); larger bounds fall
    back to the stable comparison sort.
    """
    if bound <= np.iinfo(np.int16).max:
        code = code.astype(np.int16)
    return np.argsort(code, kind="stable")


@dataclass
class ShuffleResult:
    """Everything the shuffle produced."""

    destinations: List[Relation]
    #: per destination: vault-relative byte address of each write, in
    #: arrival order (replayable on the event DRAM model).
    write_traces: List[np.ndarray]
    #: per destination: number of tuples received from each source.
    inbound_histograms: List[np.ndarray]
    barrier: ShuffleBarrier
    permutable: bool
    #: Zero-copy SoA view over all destinations (one flat buffer with
    #: one segment per destination); populated by the segmented engine
    #: so the probe phase can run whole-relation kernels without
    #: re-flattening.  ``None`` on the reference paths.
    columns: Optional[SegmentedColumns] = None
    #: Retry/backoff accounting of the fault-injection protocol
    #: (:mod:`repro.faults`); ``None`` when no faults were active.
    resilience: Optional[ResilienceStats] = None

    @property
    def total_tuples(self) -> int:
        return sum(len(d) for d in self.destinations)


class ShuffleEngine:
    """Move tuples between partitions with a chosen write discipline."""

    def __init__(
        self,
        num_destinations: int,
        object_b: int = TUPLE_B,
        permutable: bool = False,
        interleave: Callable[[Sequence[int]], ArrivalOrder] = round_robin_interleave,
        vectorized: bool = True,
        segmented: bool = True,
        faults: Optional[FaultSpec] = None,
        fault_salt: int = 0,
    ) -> None:
        if num_destinations < 1:
            raise ValueError("need at least one destination")
        if object_b <= 0:
            raise ValueError("object size must be positive")
        self._num_dest = num_destinations
        self._object_b = object_b
        self._permutable = permutable
        self._interleave = interleave
        # ``vectorized=False`` selects the per-tuple reference loop; the
        # equivalence suite pins the two paths byte-identical.
        self._vectorized = vectorized
        # ``segmented=False`` selects the per-destination vectorized
        # path (PR 2); the default materializes *all* destinations in
        # one whole-relation gather/scatter pass over SoA columns.
        self._segmented = segmented
        # Optional deterministic fault schedule (repro.faults): replayed
        # through the barrier's retry/backoff protocol.  The functional
        # output stays byte-identical under any schedule.
        self._faults = faults
        self._fault_salt = fault_salt

    @property
    def permutable(self) -> bool:
        return self._permutable

    def _fault_session(
        self, sizes_b: np.ndarray, num_src: int
    ) -> Optional[DeliverySession]:
        """A delivery session for this run's fault schedule, if active."""
        if self._faults is None or not self._faults.active:
            return None
        plan = FaultPlan.build(
            self._faults, num_src, self._num_dest, salt=self._fault_salt
        )
        return DeliverySession(plan, sizes_b)

    def _make_barrier(self, num_vaults: int, faulted: bool) -> ShuffleBarrier:
        if faulted:
            return FaultTolerantShuffleBarrier(num_vaults)
        return ShuffleBarrier(num_vaults)

    def run(
        self,
        sources: List[Relation],
        dest_of: List[np.ndarray],
        overprovision: float = 1.0,
    ) -> ShuffleResult:
        """Shuffle ``sources[s]`` tuples to partitions ``dest_of[s]``.

        ``overprovision`` scales the permutable destination-buffer size
        relative to the exact inbound total (the CPU only has a
        "best-effort overprovisioned estimation" before the histograms
        are exchanged; 1.0 models the exact post-histogram size).
        """
        if len(sources) != len(dest_of):
            raise ValueError("sources and destination maps must align")
        if overprovision < 1.0:
            raise ValueError("overprovision must be >= 1.0")
        if self._vectorized and self._segmented:
            with _span(
                "shuffle",
                category="shuffle",
                sources=len(sources),
                destinations=self._num_dest,
                segmented=True,
            ) as sp:
                result = self._run_segmented(sources, dest_of, overprovision)
                sp.set(faulted=result.resilience is not None)
                return result
        num_src = len(sources)

        # Histogram-build step: per source, tuples per destination.
        histograms = []
        for rel, dests in zip(sources, dest_of):
            if len(rel) != len(dests):
                raise ValueError("destination map length must match relation")
            histograms.append(build_histogram(dests, self._num_dest))

        # shuffle_begin: exchange totals, seal the barrier.
        sizes_b = (
            np.stack(histograms) * TUPLE_B
            if histograms
            else np.zeros((0, self._num_dest), dtype=np.int64)
        )
        session = self._fault_session(sizes_b, num_src)
        barrier = self._make_barrier(
            self._num_dest if self._num_dest >= num_src else num_src,
            faulted=session is not None,
        )
        for src, hist in enumerate(histograms):
            for dest in range(self._num_dest):
                barrier.announce(src, dest, int(hist[dest]) * TUPLE_B)
        barrier.seal()

        # Build per-(source, dest) tuple streams, preserving source order.
        streams: List[List[np.ndarray]] = []
        for rel, dests in zip(sources, dest_of):
            order = np.argsort(dests, kind="stable")
            sorted_data = rel.data[order]
            sorted_dests = np.asarray(dests)[order]
            boundaries = np.searchsorted(sorted_dests, np.arange(self._num_dest + 1))
            streams.append(
                [
                    sorted_data[boundaries[d] : boundaries[d + 1]]
                    for d in range(self._num_dest)
                ]
            )

        per_src_offsets = source_write_offsets(histograms)
        destinations: List[Relation] = []
        traces: List[np.ndarray] = []
        inbound: List[np.ndarray] = []
        with _span(
            "shuffle",
            category="shuffle",
            sources=num_src,
            destinations=self._num_dest,
            segmented=False,
            faulted=session is not None,
        ):
            for dest in range(self._num_dest):
                with _span(
                    "shuffle_round", category="shuffle", dest=dest
                ) as round_sp:
                    rel, trace, hist = self._materialize_destination(
                        dest,
                        [streams[s][dest] for s in range(num_src)],
                        [int(per_src_offsets[s][dest]) for s in range(num_src)],
                        barrier,
                        overprovision,
                        session,
                    )
                    round_sp.set(tuples=len(rel))
                destinations.append(rel)
                traces.append(trace)
                inbound.append(hist)

            if session is not None:
                session.finalize(barrier)
        if not barrier.all_complete():
            raise RuntimeError("shuffle barrier incomplete after all deliveries")
        return ShuffleResult(
            destinations=destinations,
            write_traces=traces,
            inbound_histograms=inbound,
            barrier=barrier,
            permutable=self._permutable,
            resilience=session.stats if session is not None else None,
        )

    def _run_segmented(
        self,
        sources: List[Relation],
        dest_of: List[np.ndarray],
        overprovision: float,
    ) -> ShuffleResult:
        """Whole-relation materialization: every destination in one pass.

        The per-destination path pays fixed numpy dispatch (and one
        structured-dtype concatenation) per destination; here the
        sources become flat SoA columns, a composite ``(dest, src)``
        lexsort groups all streams at once, the arrival order of *all*
        destinations is computed in one shot, and the destination
        buffers are written as two field scatters into one preallocated
        tuple array.  Byte-identical to the per-destination paths
        (destinations, traces, histograms and barrier state alike).
        """
        num_src = len(sources)
        num_dest = self._num_dest
        lens = np.array([len(rel) for rel in sources], dtype=np.int64)
        for rel, dests in zip(sources, dest_of):
            if len(rel) != len(dests):
                raise ValueError("destination map length must match relation")
        total = int(lens.sum())
        cols = SegmentedColumns.from_relations(sources)
        if num_src and total:
            dest_all = np.concatenate(
                [np.asarray(d, dtype=np.int64) for d in dest_of]
            )
            if int(dest_all.min()) < 0 or int(dest_all.max()) >= num_dest:
                raise ValueError("bucket ids out of range")
        else:
            dest_all = np.empty(0, dtype=np.int64)
        src_ids = np.repeat(np.arange(num_src, dtype=np.int64), lens)

        # Histogram build: per-(source, destination) tuple counts.
        hist = np.bincount(
            src_ids * num_dest + dest_all, minlength=num_src * num_dest
        ).reshape(num_src, num_dest)

        # shuffle_begin: exchange totals, seal the barrier.
        session = self._fault_session(hist * TUPLE_B, num_src)
        barrier = self._make_barrier(
            num_dest if num_dest >= num_src else num_src,
            faulted=session is not None,
        )
        barrier.announce_all(hist * TUPLE_B)
        barrier.seal()

        # Group all (dest, src) streams at once, preserving source order:
        # a stable sort of the composite (dest, src) code equals
        # np.lexsort((src_ids, dest_all)) and takes the radix path for
        # realistic partition counts.
        perm = _grouping_sort(dest_all * num_src + src_ids, num_dest * num_src)
        sorted_dest = dest_all[perm]
        sorted_src = src_ids[perm]
        stream_lens = hist.T.reshape(-1)  # [dest-major][src] order
        stream_starts_flat = np.zeros(len(stream_lens), dtype=np.int64)
        np.cumsum(stream_lens[:-1], out=stream_starts_flat[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(
            stream_starts_flat, stream_lens
        )
        dest_totals = hist.sum(axis=0)
        dest_base = np.zeros(num_dest, dtype=np.int64)
        np.cumsum(dest_totals[:-1], out=dest_base[1:])
        # Per-(source, dest) write offsets (source_write_offsets, batched).
        offmat = np.zeros((num_src, num_dest), dtype=np.int64)
        if num_src > 1:
            np.cumsum(hist[:-1], axis=0, out=offmat[1:])

        # Arrival order of every destination.  Round-robin drains rounds
        # in source order, i.e. a stable sort by (idx, src) -- computed
        # for all destinations as one (dest, idx, src) lexsort, spelled
        # as two stable grouping sorts (composite (idx, src) code, then
        # dest) so both take the radix path.  Any other interleave model
        # runs per destination on its inbound lengths, exactly as the
        # per-destination path calls it.
        if self._interleave is round_robin_interleave:
            max_stream = int(stream_lens.max()) if len(stream_lens) else 0
            by_idx_src = _grouping_sort(
                within * num_src + sorted_src, max_stream * num_src + num_src
            )
            arrival_perm = by_idx_src[
                _grouping_sort(sorted_dest[by_idx_src], num_dest)
            ]
        else:
            pieces = []
            for dest in range(num_dest):
                src_arr, idx_arr = self._interleave(hist[:, dest])
                starts_d = stream_starts(hist[:, dest])
                pieces.append(dest_base[dest] + starts_d[src_arr] + idx_arr)
            arrival_perm = (
                np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
            )
        arr_src = sorted_src[arrival_perm]
        arr_dest = sorted_dest[arrival_perm]
        arr_within = within[arrival_perm]
        take = perm[arrival_perm]
        arr_offsets = offmat[arr_src, arr_dest] if total else np.empty(0, np.int64)

        # Materialize all destinations: one preallocated tuple buffer,
        # written field-wise (no structured-dtype promotion).
        out = np.empty(total, dtype=TUPLE_DTYPE)
        out_keys = out["key"]
        out_payloads = out["payload"]
        bounds = np.append(dest_base, total)
        traces: List[np.ndarray] = []
        if self._permutable:
            # Arrival order *is* the layout: one gather per column.
            out_keys[:] = cols.keys[take]
            out_payloads[:] = cols.payloads[take]
            marked_all = arr_offsets * self._object_b
            for dest in range(num_dest):
                n_d = int(dest_totals[dest])
                capacity = max(1, int(np.ceil(n_d * overprovision)))
                engine = PermutableWriteEngine(
                    PermutableRegionConfig(
                        base=0,
                        size_b=capacity * self._object_b,
                        object_b=self._object_b,
                    )
                )
                traces.append(
                    engine.write_batch(
                        count=n_d,
                        marked_addrs=marked_all[bounds[dest] : bounds[dest + 1]],
                    )
                )
        else:
            slots = dest_base[arr_dest] + arr_offsets + arr_within
            out_keys[slots] = cols.keys[take]
            out_payloads[slots] = cols.payloads[take]
            trace_all = (arr_offsets + arr_within) * self._object_b
            traces = [
                trace_all[bounds[d] : bounds[d + 1]] for d in range(num_dest)
            ]
        for dest in range(num_dest):
            if session is not None:
                # Disrupted destinations degrade to the slow per-stream
                # delivery path; healthy ones keep the batched retire.
                session.deliver_dest(barrier, dest)
            else:
                barrier.deliver_batch(dest, int(dest_totals[dest]) * TUPLE_B)

        destinations = [
            Relation(out[bounds[d] : bounds[d + 1]], f"shuffle_dest/{d}")
            for d in range(num_dest)
        ]
        inbound = [np.ascontiguousarray(hist[:, d]) for d in range(num_dest)]
        if session is not None:
            session.finalize(barrier)
        if not barrier.all_complete():
            raise RuntimeError("shuffle barrier incomplete after all deliveries")
        return ShuffleResult(
            destinations=destinations,
            write_traces=traces,
            inbound_histograms=inbound,
            barrier=barrier,
            permutable=self._permutable,
            columns=SegmentedColumns(
                keys=out_keys, payloads=out_payloads, segments=bounds
            ),
            resilience=session.stats if session is not None else None,
        )

    def _materialize_destination(
        self,
        dest: int,
        inbound_streams: List[np.ndarray],
        src_offsets: List[int],
        barrier: ShuffleBarrier,
        overprovision: float,
        session: Optional[DeliverySession] = None,
    ) -> Tuple[Relation, np.ndarray, np.ndarray]:
        if self._vectorized:
            return self._materialize_vectorized(
                dest, inbound_streams, src_offsets, barrier, overprovision, session
            )
        return self._materialize_scalar(
            dest, inbound_streams, src_offsets, barrier, overprovision, session
        )

    def _materialize_vectorized(
        self,
        dest: int,
        inbound_streams: List[np.ndarray],
        src_offsets: List[int],
        barrier: ShuffleBarrier,
        overprovision: float,
        session: Optional[DeliverySession] = None,
    ) -> Tuple[Relation, np.ndarray, np.ndarray]:
        """Array-native materialization: the whole arrival loop becomes a
        handful of fancy-indexing operations.

        ``flat`` maps arrival order to positions in the concatenation of
        the inbound streams; the permutable path writes arrivals at the
        sequential tail (one :meth:`PermutableWriteEngine.write_batch`),
        the addressed path scatters them to their exact histogram slots.
        """
        hist = np.array([len(s) for s in inbound_streams], dtype=np.int64)
        total = int(hist.sum())
        src_arr, idx_arr = self._interleave(hist)
        starts = stream_starts(hist)
        concat = (
            np.concatenate(inbound_streams)
            if inbound_streams
            else np.empty(0, dtype=TUPLE_DTYPE)
        )
        offsets = np.asarray(src_offsets, dtype=np.int64)
        flat = starts[src_arr] + idx_arr

        if self._permutable:
            capacity = max(1, int(np.ceil(total * overprovision)))
            engine = PermutableWriteEngine(
                PermutableRegionConfig(
                    base=0, size_b=capacity * self._object_b, object_b=self._object_b
                )
            )
            trace = engine.write_batch(
                count=total,
                marked_addrs=offsets[src_arr] * self._object_b,
            )
            buffer = concat[flat]
        else:
            slots = offsets[src_arr] + idx_arr
            trace = slots * self._object_b
            buffer = np.empty(total, dtype=TUPLE_DTYPE)
            buffer[slots] = concat[flat]
        if session is not None:
            session.deliver_dest(barrier, dest)
        else:
            barrier.deliver_batch(dest, total * TUPLE_B)
        return Relation(buffer, f"shuffle_dest/{dest}"), trace, hist

    def _materialize_scalar(
        self,
        dest: int,
        inbound_streams: List[np.ndarray],
        src_offsets: List[int],
        barrier: ShuffleBarrier,
        overprovision: float,
        session: Optional[DeliverySession] = None,
    ) -> Tuple[Relation, np.ndarray, np.ndarray]:
        """Per-tuple reference loop (the seed implementation), kept so the
        equivalence suite can pin the vectorized path against it."""
        if session is not None:
            # The scalar loop already *is* the per-delivery slow path;
            # the session only records the identical retry/duplicate
            # events so stats and barrier state match the batched paths.
            session.record_dest_events(barrier, dest)
        lengths = [len(s) for s in inbound_streams]
        total = sum(lengths)
        arrival = list(zip(*self._interleave(lengths)))
        hist = np.array(lengths, dtype=np.int64)

        if self._permutable:
            capacity = max(1, int(np.ceil(total * overprovision)))
            engine = PermutableWriteEngine(
                PermutableRegionConfig(
                    base=0, size_b=capacity * self._object_b, object_b=self._object_b
                )
            )
            trace = np.empty(total, dtype=np.int64)
            buffer = np.empty(total, dtype=TUPLE_DTYPE)
            for i, (src, idx) in enumerate(arrival):
                addr = engine.write(None, marked_addr=src_offsets[src] * self._object_b)
                trace[i] = addr
                buffer[i] = inbound_streams[src][idx]
                barrier.deliver(dest, TUPLE_B)
            relation = Relation(buffer, f"shuffle_dest/{dest}")
        else:
            trace = np.empty(total, dtype=np.int64)
            buffer = np.empty(total, dtype=TUPLE_DTYPE)
            cursors = list(src_offsets)
            for i, (src, idx) in enumerate(arrival):
                slot = cursors[src]
                cursors[src] += 1
                trace[i] = slot * self._object_b
                buffer[slot] = inbound_streams[src][idx]
                barrier.deliver(dest, TUPLE_B)
            relation = Relation(buffer, f"shuffle_dest/{dest}")
        return relation, trace, hist
