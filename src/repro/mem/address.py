"""Flat-address to DRAM-coordinate translation.

Layout decisions (documented here because every model depends on them):

- The flat space is **vault-contiguous**: vault ``v`` owns addresses
  ``[v * vault_capacity, (v + 1) * vault_capacity)``.  Vaults are numbered
  stack-major: vault id = ``stack * vaults_per_stack + local_vault``.
  This matches the paper's notion of a "memory partition" per vault that
  software targets during partitioning.
- Within a vault, consecutive rows are **interleaved across banks**
  round-robin, so a sequential stream engages all 8 banks of a vault and
  a bank's tRC never throttles streaming.
- A row is 256 B (HMC).  The column offset is the byte offset within the
  row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram import HmcGeometry


@dataclass(frozen=True)
class DramCoord:
    """Fully decoded DRAM coordinates of one byte address."""

    stack: int
    vault: int  # global vault id (stack-major)
    bank: int
    row: int  # row index within the bank
    column: int  # byte offset within the row

    @property
    def local_vault(self) -> int:
        """Vault index within its stack (requires the default 16/stack)."""
        return self.vault % 16


class AddressMap:
    """Bidirectional mapping between flat addresses and DRAM coordinates."""

    def __init__(self, geometry: HmcGeometry) -> None:
        self._geo = geometry

    @property
    def geometry(self) -> HmcGeometry:
        return self._geo

    def check(self, addr: int) -> None:
        if not 0 <= addr < self._geo.total_capacity_b:
            raise ValueError(
                f"address {addr:#x} outside the {self._geo.total_capacity_b:#x}-byte space"
            )

    def vault_of(self, addr: int) -> int:
        """Global vault id owning ``addr``."""
        self.check(addr)
        return addr // self._geo.vault_capacity_b

    def stack_of(self, addr: int) -> int:
        return self.vault_of(addr) // self._geo.vaults_per_stack

    def vault_base(self, vault: int) -> int:
        """First flat address of a vault's memory partition."""
        if not 0 <= vault < self._geo.total_vaults:
            raise ValueError(f"vault {vault} out of range")
        return vault * self._geo.vault_capacity_b

    def decode(self, addr: int) -> DramCoord:
        """Translate a flat byte address to DRAM coordinates."""
        self.check(addr)
        geo = self._geo
        vault = addr // geo.vault_capacity_b
        offset = addr % geo.vault_capacity_b
        global_row = offset // geo.row_size_b
        column = offset % geo.row_size_b
        bank = global_row % geo.banks_per_vault
        row = global_row // geo.banks_per_vault
        return DramCoord(
            stack=vault // geo.vaults_per_stack,
            vault=vault,
            bank=bank,
            row=row,
            column=column,
        )

    def encode(self, coord: DramCoord) -> int:
        """Inverse of :meth:`decode`."""
        geo = self._geo
        if not 0 <= coord.vault < geo.total_vaults:
            raise ValueError(f"vault {coord.vault} out of range")
        if not 0 <= coord.bank < geo.banks_per_vault:
            raise ValueError(f"bank {coord.bank} out of range")
        if not 0 <= coord.row < geo.rows_per_bank:
            raise ValueError(f"row {coord.row} out of range")
        if not 0 <= coord.column < geo.row_size_b:
            raise ValueError(f"column {coord.column} out of range")
        global_row = coord.row * geo.banks_per_vault + coord.bank
        offset = global_row * geo.row_size_b + coord.column
        return coord.vault * geo.vault_capacity_b + offset

    def row_id(self, addr: int) -> int:
        """Globally unique (vault, bank, row) identifier for an address.

        Two addresses share a row id iff they live in the same physical
        DRAM row -- the unit of row-buffer locality accounting.
        """
        self.check(addr)
        return addr // self._geo.row_size_b

    def same_row(self, a: int, b: int) -> bool:
        return self.row_id(a) == self.row_id(b)
