"""Flat physical address space and HMC address decomposition.

The paper assumes "a flat physical address space spanning across
conventional planar DRAM and the NMP-capable devices" with each vault
owning one contiguous memory partition.  :class:`AddressMap` translates a
flat byte address to its ``(stack, vault, bank, row, column)`` DRAM
coordinates, and :class:`MemoryLayout` allocates named regions (relations,
partition destination buffers) inside vaults.
"""

from repro.mem.address import AddressMap, DramCoord
from repro.mem.layout import MemoryLayout, Region

__all__ = ["AddressMap", "DramCoord", "MemoryLayout", "Region"]
