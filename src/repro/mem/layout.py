"""Named region allocation inside vault memory partitions.

The CPU (in its supervisory role, paper section 5.1) allocates input
relations and partition destination buffers before launching an operator.
:class:`MemoryLayout` is that allocator: a simple per-vault bump pointer
that hands out row-aligned regions and remembers them by name, so the
operator implementations and the shuffle model agree on where everything
lives without sharing hidden state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config.dram import HmcGeometry
from repro.mem.address import AddressMap


@dataclass(frozen=True)
class Region:
    """A contiguous, row-aligned allocation inside one vault."""

    name: str
    vault: int
    base: int
    size_b: int

    @property
    def end(self) -> int:
        return self.base + self.size_b

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class MemoryLayout:
    """Bump-pointer allocator over the vault-contiguous address space."""

    def __init__(self, geometry: HmcGeometry) -> None:
        self._geo = geometry
        self._amap = AddressMap(geometry)
        self._next_free: List[int] = [
            self._amap.vault_base(v) for v in range(geometry.total_vaults)
        ]
        self._regions: Dict[str, Region] = {}

    @property
    def address_map(self) -> AddressMap:
        return self._amap

    def _align_up(self, addr: int) -> int:
        row = self._geo.row_size_b
        return (addr + row - 1) // row * row

    def free_bytes(self, vault: int) -> int:
        limit = self._amap.vault_base(vault) + self._geo.vault_capacity_b
        return limit - self._next_free[vault]

    def allocate(self, name: str, vault: int, size_b: int) -> Region:
        """Allocate ``size_b`` bytes in ``vault`` under a unique name."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if size_b <= 0:
            raise ValueError("size must be positive")
        base = self._align_up(self._next_free[vault])
        limit = self._amap.vault_base(vault) + self._geo.vault_capacity_b
        if base + size_b > limit:
            raise MemoryError(
                f"vault {vault} cannot fit {size_b} bytes "
                f"(only {limit - base} free)"
            )
        region = Region(name=name, vault=vault, base=base, size_b=size_b)
        self._next_free[vault] = base + size_b
        self._regions[name] = region
        return region

    def allocate_striped(self, name: str, size_b_per_vault: int) -> List[Region]:
        """Allocate one same-sized region in every vault (e.g. a relation
        range-partitioned across all memory partitions)."""
        return [
            self.allocate(f"{name}/v{v}", v, size_b_per_vault)
            for v in range(self._geo.total_vaults)
        ]

    def get(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise KeyError(f"no region named {name!r}") from None

    def regions_in_vault(self, vault: int) -> List[Region]:
        return [r for r in self._regions.values() if r.vault == vault]

    def __contains__(self, name: str) -> bool:
        return name in self._regions
