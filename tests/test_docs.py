"""The doc-check hook: documentation that executes.

Every fenced ``python`` code block containing doctest prompts in
``README.md`` and ``docs/*.md`` is run as a self-contained doctest, the
CLI flags documented in ``docs/USAGE.md`` are checked against the actual
``run_all`` argparse parser, and every ``python -m repro...`` module the
docs mention must be importable.  ``make docs-check`` runs this file
plus smoke runs of the documented commands, so the docs cannot rot.
"""

import doctest
import importlib.util
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_MODULE = re.compile(r"python -m (repro[\w.]*)")


def _doctest_blocks():
    for path in DOC_FILES:
        for i, block in enumerate(_FENCE.findall(path.read_text())):
            if ">>>" in block:
                yield pytest.param(path.name, block, id=f"{path.name}-block{i}")


def test_docs_exist():
    for path in DOC_FILES:
        assert path.is_file(), path
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "ARCHITECTURE.md", "USAGE.md"} <= names


def test_docs_have_executable_examples():
    blocks = list(_doctest_blocks())
    assert len(blocks) >= 4, "README/docs lost their executable examples"


@pytest.mark.parametrize("source,block", list(_doctest_blocks()))
def test_doc_block_executes(source, block):
    """Each fenced example runs in a fresh namespace and must pass."""
    parser = doctest.DocTestParser()
    test = parser.get_doctest(block, {}, source, source, 0)
    runner = doctest.DocTestRunner(
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE
    )
    result = runner.run(test)
    assert result.failed == 0, f"doctest failure in {source} (see captured output)"


def test_usage_flags_match_cli_parsers():
    """Every --flag named in the docs must exist on a real parser
    (run_all's, the scenario-API CLI's, the service CLI's, the suite
    CLI's -- subcommand flags included -- or the benchmark tools'), and
    the flags the docs promise must actually be documented."""
    import argparse
    import sys

    from repro.api.__main__ import build_parser as api_parser
    from repro.experiments.run_all import build_parser as run_all_parser
    from repro.report.__main__ import build_parser as report_parser
    from repro.service.__main__ import build_parser as service_parser
    from repro.suites.__main__ import build_parser as suites_parser

    sys.path.insert(0, str(ROOT))
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        from benchmarks.compare import build_parser as compare_parser
        from benchmarks.profile_experiment import build_parser as profile_parser
        from load_test import build_parser as load_test_parser
    finally:
        sys.path.pop(0)
        sys.path.pop(0)

    def walk(parser):
        for action in parser._actions:
            yield from action.option_strings
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    yield from walk(sub)

    parser_flags = {
        opt
        for parser in (
            run_all_parser(),
            api_parser(),
            report_parser(),
            service_parser(),
            suites_parser(),
            compare_parser(),
            profile_parser(),
            load_test_parser(),
        )
        for opt in walk(parser)
    }
    for path in (ROOT / "docs" / "USAGE.md", ROOT / "README.md"):
        documented = set(re.findall(r"(--[a-z][a-z0-9-]*)", path.read_text()))
        unknown = documented - parser_flags - {"--no-use-pep517"}
        assert not unknown, f"{path.name} documents unknown flags: {unknown}"
    usage = (ROOT / "docs" / "USAGE.md").read_text()
    assert "--pipelines" in usage and "--fast" in usage and "--sweep" in usage


def test_documented_modules_are_importable():
    """Every `python -m repro...` target mentioned in the docs exists."""
    for path in DOC_FILES:
        for module in set(_MODULE.findall(path.read_text())):
            module = module.rstrip(".")
            if module.endswith("<module>"):
                continue
            assert importlib.util.find_spec(module) is not None, (path.name, module)


def test_usage_experiment_table_covers_all_modules():
    """docs/USAGE.md's module table must name every experiment module."""
    import repro.experiments as pkg

    usage = (ROOT / "docs" / "USAGE.md").read_text()
    pkg_dir = Path(pkg.__path__[0])
    modules = {
        p.stem
        for p in pkg_dir.glob("*.py")
        if p.stem not in ("__init__", "common", "run_all")
    }
    missing = {m for m in modules if f"`{m}`" not in usage}
    assert not missing, f"docs/USAGE.md missing experiment modules: {missing}"
