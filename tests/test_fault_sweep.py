"""The fault_sweep experiment: golden pin + invariants.

The committed golden (``tests/data/fault_sweep_golden.json``) pins the
seeded sweep's resilience counters exactly -- any drift in the fault
plans, the retry/backoff protocol, or the accounting shows up as a
diff here.
"""

import json
from pathlib import Path

from repro.experiments import fault_sweep

DATA = Path(__file__).parent / "data"


def test_matches_committed_golden():
    out = fault_sweep.run()
    golden = json.loads((DATA / "fault_sweep_golden.json").read_text())
    assert out["alpha"] == golden["alpha"]
    assert out["points"] == golden["points"]


def test_every_point_is_byte_identical():
    out = fault_sweep.run()
    assert all(p["identical"] for p in out["points"].values())


def test_fault_free_points_report_zero_overhead():
    out = fault_sweep.run()
    for key, point in out["points"].items():
        if key.startswith("0:"):
            assert point["retries"] == 0
            assert point["overhead_b"] == 0.0


def test_overhead_grows_with_intensity():
    points = fault_sweep.run()["points"]
    for name in ("naive", "skew-aware"):
        retries = [points[f"{i:g}:{name}"]["retries"]
                   for i in fault_sweep.INTENSITIES]
        assert retries == sorted(retries)
        assert retries[-1] > 0


def test_intensity_scales_the_mix():
    spec = fault_sweep.fault_spec(0.5, seed=3)
    assert spec.drop_prob == fault_sweep.FULL_MIX["drop_prob"] * 0.5
    assert spec.seed == 3
    assert not fault_sweep.fault_spec(0.0, seed=3).active
