"""System-level tests: machines run operators correctly and reproduce the
paper's qualitative orderings at small scale."""

import pytest

from repro.analytics.workload import (
    make_groupby_workload,
    make_join_workload,
    make_scan_workload,
    make_sort_workload,
)
from repro.operators.oracle import oracle_join, oracle_scan, oracle_sort
from repro.perf.result import partition_speedup, probe_speedup
from repro.systems import Machine, build_system, run_all_systems

P = 16
SCALE = 500.0


@pytest.fixture(scope="module")
def join_results():
    w = make_join_workload(2000, 8000, P, seed=31)
    return {
        name: build_system(name).run_operator("join", w, scale_factor=SCALE)
        for name in ("cpu", "nmp-rand", "nmp-seq", "nmp-perm", "mondrian-noperm", "mondrian")
    }


class TestMachineBasics:
    def test_all_presets_build_machines(self):
        for name in ("cpu", "nmp", "nmp-rand", "nmp-seq", "nmp-perm",
                     "mondrian-noperm", "mondrian"):
            assert build_system(name).name == name

    def test_unknown_operator_rejected(self):
        m = build_system("cpu")
        with pytest.raises(KeyError, match="unknown operator"):
            m.run_operator("cartesian", make_scan_workload(100, P))

    def test_bad_scale_rejected(self):
        m = build_system("cpu")
        with pytest.raises(ValueError):
            m.run_operator("scan", make_scan_workload(100, P), scale_factor=0)

    def test_variant_selection(self):
        cpu = build_system("cpu").variant(64)
        assert cpu.radix_bits == 16
        assert cpu.local_sort == "quicksort"
        assert not cpu.simd
        mon = build_system("mondrian").variant(64)
        assert mon.radix_bits == 6
        assert mon.simd and mon.permutable
        assert mon.local_sort == "mergesort"

    def test_functional_output_correct_on_machine(self):
        w = make_scan_workload(2000, P, seed=32)
        for name in ("cpu", "mondrian"):
            r = build_system(name).run_operator("scan", w)
            assert (r.output.matches, r.output.payload_sum) == oracle_scan(w)

    def test_join_output_same_across_machines(self, join_results):
        oracle = oracle_join(make_join_workload(2000, 8000, P, seed=31))
        for name, result in join_results.items():
            assert (result.output.matches, result.output.checksum) == oracle, name

    def test_sort_output_sorted_everywhere(self):
        w = make_sort_workload(2000, P, seed=33)
        for name in ("cpu", "nmp-seq", "mondrian"):
            r = build_system(name).run_operator("sort", w)
            assert r.output.is_sorted()
            assert r.output.multiset_equal(oracle_sort(w))

    def test_run_all_systems_helper(self):
        w = make_scan_workload(500, P, seed=34)
        results = run_all_systems("scan", w, presets=["cpu", "mondrian"])
        assert set(results) == {"cpu", "mondrian"}


class TestPaperOrderings:
    """The qualitative shape of the paper's evaluation (section 7)."""

    def test_partition_ordering_table5(self, join_results):
        cpu = join_results["cpu"]
        s = {
            name: partition_speedup(cpu, join_results[name])
            for name in ("nmp-rand", "nmp-perm", "mondrian-noperm", "mondrian")
        }
        # Strict Table 5 ordering.
        assert 1 < s["nmp-rand"] < s["nmp-perm"] < s["mondrian-noperm"] < s["mondrian"]

    def test_permutability_step_ratio(self, join_results):
        # Paper: NMP-perm ~1.7x over NMP from simpler code.
        ratio = (
            join_results["nmp-rand"].partition_time_s
            / join_results["nmp-perm"].partition_time_s
        )
        assert 1.2 < ratio < 2.5

    def test_probe_nmp_rand_beats_nmp_seq_on_join(self, join_results):
        # Paper figure 6: the log n of sort-based probing is not paid
        # back on scalar hardware.
        assert join_results["nmp-rand"].probe_time_s < join_results["nmp-seq"].probe_time_s

    def test_probe_mondrian_absorbs_logn(self, join_results):
        # Mondrian's wide SIMD makes the sort-based probe the fastest.
        assert join_results["mondrian"].probe_time_s < join_results["nmp-seq"].probe_time_s
        assert join_results["mondrian"].probe_time_s <= join_results["nmp-rand"].probe_time_s * 1.1

    def test_overall_mondrian_fastest(self, join_results):
        times = {n: r.runtime_s for n, r in join_results.items()}
        assert times["mondrian"] == min(times.values())
        assert times["cpu"] == max(times.values())

    def test_energy_ordering(self, join_results):
        # Mondrian spends the least energy; the CPU the most.
        energies = {n: r.energy.total_j for n, r in join_results.items()}
        assert energies["mondrian"] == min(energies.values())
        assert energies["cpu"] == max(energies.values())

    def test_permutability_cuts_activations(self, join_results):
        def activations(result):
            return sum(
                p.events.dram_activations
                for p in result.phase_perfs
                if p.phase.is_partitioning
            )
        assert activations(join_results["mondrian"]) * 2 < activations(
            join_results["mondrian-noperm"]
        )

    def test_cpu_cores_dominate_cpu_energy(self, join_results):
        fr = join_results["cpu"].energy.fractions()
        assert fr["cores"] == max(fr.values())

    def test_mondrian_dram_dynamic_share_exceeds_nmp(self, join_results):
        # Aggressive bandwidth use shifts the profile toward dynamic DRAM.
        mon = join_results["mondrian"].energy.fractions()["dram_dyn"]
        nmp = join_results["nmp-rand"].energy.fractions()["dram_dyn"]
        assert mon > nmp


class TestScaling:
    def test_larger_scale_longer_runtime(self):
        w = make_scan_workload(1000, P, seed=35)
        m = build_system("mondrian")
        small = m.run_operator("scan", w, scale_factor=10.0)
        large = m.run_operator("scan", w, scale_factor=100.0)
        assert large.runtime_s == pytest.approx(small.runtime_s * 10, rel=0.05)

    def test_scan_speedup_scale_invariant(self):
        w = make_scan_workload(1000, P, seed=36)
        cpu, mon = build_system("cpu"), build_system("mondrian")
        s_small = (
            cpu.run_operator("scan", w, scale_factor=10).runtime_s
            / mon.run_operator("scan", w, scale_factor=10).runtime_s
        )
        s_large = (
            cpu.run_operator("scan", w, scale_factor=1000).runtime_s
            / mon.run_operator("scan", w, scale_factor=1000).runtime_s
        )
        assert s_small == pytest.approx(s_large, rel=0.05)


class TestBandwidthClaims:
    """Per-vault bandwidth figures from section 7.1."""

    def test_mondrian_scan_near_peak(self):
        w = make_scan_workload(2000, 64, seed=37)
        r = build_system("mondrian").run_operator("scan", w, scale_factor=SCALE)
        perf = r.phase_perfs[0]
        per_vault = perf.achieved_bw_bps / 64
        # Paper: 6.7 GB/s of the 8 GB/s peak.
        assert per_vault > 5e9

    def test_nmp_scan_below_mondrian(self):
        w = make_scan_workload(2000, 64, seed=37)
        nmp = build_system("nmp-rand").run_operator("scan", w, scale_factor=SCALE)
        mon = build_system("mondrian").run_operator("scan", w, scale_factor=SCALE)
        assert (
            nmp.phase_perfs[0].achieved_bw_bps
            < mon.phase_perfs[0].achieved_bw_bps
        )
