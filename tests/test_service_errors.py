"""Tests for the service's failure-path surfaces: ``ServerHandle.stop``
timeout/escalation, daemon responses to oversized / malformed / deadline
-carrying requests, and the ``python -m repro.service`` CLI driven
in-process (serve wiring, submit degradation, offline recover)."""

import json
import socket
from pathlib import Path

import pytest

from repro.api import Scenario
from repro.experiments import common
from repro.service import ResultStore, ServiceClient, serve_background
from repro.service.daemon import _MAX_LINE, ServerHandle
from repro.service import __main__ as service_cli

ROOT = Path(__file__).resolve().parents[1]
SMOKE_SPEC = ROOT / "tests" / "data" / "sweep_smoke.json"

FAST = dict(model_scale=50.0, num_partitions=8)


@pytest.fixture(autouse=True)
def isolated_store_state(monkeypatch):
    monkeypatch.delenv(common.STORE_ENV, raising=False)
    monkeypatch.delenv(common.STORE_MAX_BYTES_ENV, raising=False)
    common.configure_store(None)
    common.clear_caches()
    yield
    common.configure_store(None)
    common.clear_caches()
    common.set_cache_enabled(True)


def dead_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


# ---------------------------------------------------------------------------
# ServerHandle.stop: polite, timed out, escalated
# ---------------------------------------------------------------------------


class TestServerHandleStop:
    def test_polite_stop_returns_true(self):
        handle = serve_background()
        assert handle.stop() is True
        assert handle.stop() is True  # no-op on an already-stopped server

    def test_unreachable_wire_escalates_to_the_loop(self):
        handle = serve_background()
        # Same thread and same force-stop switch, but a dead port: the
        # polite shutdown can't be delivered, so stop() must fall back
        # to forcing the serve loop's stop event -- and still succeed.
        broken = ServerHandle(
            handle.host, dead_port(), handle._thread,
            force_stop=handle._force_stop,
        )
        assert broken.stop(timeout=5.0) is True
        assert not handle._thread.is_alive()

    def test_stop_without_escalation_reports_failure(self):
        handle = serve_background()
        try:
            broken = ServerHandle(
                handle.host, dead_port(), handle._thread, force_stop=None
            )
            # No wire, no force-stop switch: the thread survives and
            # stop() must say so instead of pretending.
            assert broken.stop(timeout=0.2) is False
            assert handle._thread.is_alive()
        finally:
            assert handle.stop() is True


# ---------------------------------------------------------------------------
# Daemon protocol edge cases
# ---------------------------------------------------------------------------


class TestDaemonProtocolErrors:
    @pytest.fixture()
    def server(self):
        handle = serve_background()
        yield handle
        handle.stop()

    def _raw_exchange(self, address, payload: bytes, count: int = 1):
        with socket.create_connection(address, timeout=30) as sock:
            reader = sock.makefile("rb")
            sock.sendall(payload)
            return [json.loads(reader.readline()) for _ in range(count)]

    def test_malformed_json_gets_an_error_response(self, server):
        # The same connection stays usable after the bad line.
        responses = self._raw_exchange(
            server.address,
            b'{"verb": not json}\n{"verb": "ping"}\n',
            count=2,
        )
        assert responses[0]["ok"] is False
        assert responses[1]["ok"] is True
        assert responses[1]["result"]["service"] == "repro.service"

    def test_non_object_requests_are_rejected(self, server):
        for payload in (b"[1, 2, 3]\n", b'"ping"\n', b"{}\n"):
            response = self._raw_exchange(server.address, payload)[0]
            assert response["ok"] is False
            assert "JSON objects" in response["error"]

    def test_non_string_verb_is_an_unknown_verb(self, server):
        response = self._raw_exchange(server.address, b'{"verb": 5}\n')[0]
        assert response["ok"] is False
        assert "unknown verb" in response["error"]

    def test_blank_lines_are_skipped(self, server):
        responses = self._raw_exchange(
            server.address, b'\n  \n{"verb": "ping"}\n'
        )
        assert responses[0]["ok"] is True

    def test_oversized_line_answered_then_connection_dropped(self, server):
        with socket.create_connection(server.address, timeout=30) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b'{"pad": "' + b"x" * (_MAX_LINE + 1024) + b'"}\n')
            response = json.loads(reader.readline())
            assert response["ok"] is False
            assert "exceeds" in response["error"]
            assert reader.readline() == b""  # that connection is done
        # ... but the server is not.
        with ServiceClient(*server.address) as client:
            assert client.ping()["service"] == "repro.service"


# ---------------------------------------------------------------------------
# The CLI, in-process
# ---------------------------------------------------------------------------


class TestServiceCli:
    def test_serve_flag_validation(self):
        with pytest.raises(SystemExit, match="--jobs"):
            service_cli.main(["serve", "--jobs", "0"])
        with pytest.raises(SystemExit, match="--workers"):
            service_cli.main(["serve", "--workers", "-1"])

    def test_serve_fleet_flag_validation(self):
        with pytest.raises(SystemExit, match="--store"):
            service_cli.main(["serve", "--fleet"])
        with pytest.raises(SystemExit, match="--shards"):
            service_cli.main(["serve", "--fleet", "--store", "x",
                              "--shards", "0"])

    def test_serve_fleet_forwards_its_flags(self, monkeypatch, tmp_path):
        from repro.service import fleet as fleet_mod

        seen = {}
        monkeypatch.setattr(fleet_mod, "serve_fleet",
                            lambda **kw: seen.update(kw))
        service_cli.main([
            "serve", "--fleet", "--port", "0", "--store", str(tmp_path),
            "--shards", "4", "--replicas", "2", "--hedge-after", "0",
        ])
        assert seen["shards"] == 4 and seen["replicas"] == 2
        assert seen["hedge_after"] is None  # 0 disables hedging

    def test_rebalance_cli_reports(self, tmp_path, capsys):
        from repro.service.fleet import ShardedResultStore

        ShardedResultStore(tmp_path, shards=2, replicas=2)
        service_cli.main(["rebalance", "--store", str(tmp_path),
                          "--shards", "3"])
        report = json.loads(capsys.readouterr().out)
        assert report["objects"] == 0
        assert ShardedResultStore(tmp_path).num_shards == 3

    def test_serve_forwards_its_flags(self, monkeypatch, tmp_path):
        seen = {}
        monkeypatch.setattr(service_cli, "serve",
                            lambda **kw: seen.update(kw))
        service_cli.main([
            "serve", "--port", "0", "--store", str(tmp_path),
            "--jobs", "2", "--workers", "3", "--max-bytes", "1000",
        ])
        assert seen["workers"] == 3 and seen["jobs"] == 2
        assert seen["store"] == str(tmp_path)

    def test_ping_stats_submit_round_trip(self, tmp_path, capsys):
        handle = serve_background(store=tmp_path / "store")
        try:
            port = str(handle.port)
            service_cli.main(["ping", "--port", port])
            assert json.loads(capsys.readouterr().out)["service"] == (
                "repro.service"
            )
            out = tmp_path / "out.json"
            service_cli.main([
                "submit", "--port", port, "--sweep", str(SMOKE_SPEC),
                "--json", str(out), "--retries", "1", "--deadline", "60",
            ])
            golden = (ROOT / "tests" / "data" / "sweep_smoke_golden.json")
            assert out.read_bytes() == golden.read_bytes()
            capsys.readouterr()
            service_cli.main(["stats", "--port", port])
            stats = json.loads(capsys.readouterr().out)
            assert stats["scheduler"]["executed"] == 4
        finally:
            handle.stop()

    def test_submit_degrade_local_survives_a_dead_daemon(
        self, tmp_path, capsys
    ):
        out = tmp_path / "out.json"
        with pytest.warns(UserWarning, match="degrading sweep"):
            service_cli.main([
                "submit", "--port", str(dead_port()), "--retries", "0",
                "--degrade", "local",
                "--sweep", str(SMOKE_SPEC), "--json", str(out),
            ])
        golden = ROOT / "tests" / "data" / "sweep_smoke_golden.json"
        assert out.read_bytes() == golden.read_bytes()

    def test_submit_degrade_fail_raises(self, tmp_path):
        with pytest.raises(OSError):
            service_cli.main([
                "submit", "--port", str(dead_port()), "--retries", "0",
                "--sweep", str(SMOKE_SPEC), "--json", str(tmp_path / "o"),
            ])

    def test_recover_reports_store_accounting(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        common.configure_store(store)
        Scenario("cpu", "scan", **FAST).records()
        common.configure_store(None)
        store.flush()
        # Corrupt the single committed object, then recover offline.
        target = next(iter((tmp_path / "objects").glob("*/*.json")))
        target.write_text("{torn")
        service_cli.main(["recover", "--store", str(tmp_path)])
        report = json.loads(capsys.readouterr().out)
        assert report["quarantined_now"] == 1
        assert report["entries"] == 0
