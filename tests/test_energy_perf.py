"""Tests for the energy model, memory environments, phase evaluation and
result metrics."""

import pytest

from repro.config.system import get_preset
from repro.energy import EnergyBreakdown, EnergyEvents, EnergyModel
from repro.interconnect.topology import build_topology
from repro.operators.base import PHASE_DISTRIBUTE, PHASE_PROBE, PhaseCost
from repro.perf.memenv import derive_mem_environment, rand_region_cache_level
from repro.perf.model import PhaseEvaluator
from repro.perf.result import (
    SystemResult,
    efficiency_improvement,
    partition_speedup,
    speedup,
)


def make_topology(preset):
    cfg = get_preset(preset)
    return cfg, build_topology(cfg.topology, cfg.geometry, cfg.interconnect, cfg.energy)


def probe_phase(**kwargs):
    defaults = dict(name="p", category=PHASE_PROBE, instructions=1e6)
    defaults.update(kwargs)
    return PhaseCost(**defaults)


class TestEnergyEvents:
    def test_merge(self):
        a = EnergyEvents(dram_activations=1, dram_bytes=10)
        b = EnergyEvents(dram_activations=2, serdes_bytes=5)
        c = a.merged(b)
        assert c.dram_activations == 3
        assert c.dram_bytes == 10
        assert c.serdes_bytes == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyEvents(dram_bytes=-1)


class TestEnergyBreakdown:
    def test_total_and_fractions(self):
        bd = EnergyBreakdown(
            dram_dynamic_j=1.0, dram_static_j=1.0, core_j=1.5, llc_j=0.5,
            serdes_noc_j=1.0,
        )
        assert bd.total_j == pytest.approx(5.0)
        fr = bd.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["cores"] == pytest.approx(0.4)  # core + llc

    def test_empty_fractions(self):
        assert sum(EnergyBreakdown().fractions().values()) == 0.0

    def test_accumulate(self):
        a = EnergyBreakdown(core_j=1.0)
        a.accumulate(EnergyBreakdown(core_j=2.0, dram_static_j=1.0))
        assert a.core_j == 3.0
        assert a.dram_static_j == 1.0


class TestEnergyModel:
    def test_activation_energy_charged(self):
        cfg = get_preset("mondrian")
        model = EnergyModel(cfg, num_serdes_links=6)
        e1 = model.phase_energy(EnergyEvents(dram_activations=1e6), 0.0, 0.3)
        assert e1.dram_dynamic_j == pytest.approx(1e6 * 0.65e-9)

    def test_static_scales_with_runtime(self):
        cfg = get_preset("mondrian")
        model = EnergyModel(cfg, 6)
        short = model.phase_energy(EnergyEvents(), 0.001, 0.3)
        long = model.phase_energy(EnergyEvents(), 0.002, 0.3)
        assert long.dram_static_j == pytest.approx(2 * short.dram_static_j)
        assert long.serdes_noc_j == pytest.approx(2 * short.serdes_noc_j)

    def test_core_energy_uses_utilization(self):
        cfg = get_preset("cpu")
        model = EnergyModel(cfg, 4)
        idle = model.phase_energy(EnergyEvents(), 1.0, 0.3)
        busy = model.phase_energy(EnergyEvents(), 1.0, 1.0)
        assert busy.core_j == pytest.approx(cfg.num_cores * 2.1)
        assert idle.core_j < busy.core_j

    def test_llc_only_on_cpu(self):
        events = EnergyEvents(llc_accesses=1e6)
        cpu = EnergyModel(get_preset("cpu"), 4).phase_energy(events, 0.01, 0.5)
        mon = EnergyModel(get_preset("mondrian"), 6).phase_energy(events, 0.01, 0.5)
        assert cpu.llc_j > 0
        assert mon.llc_j == 0

    def test_serdes_idle_accrues_without_traffic(self):
        model = EnergyModel(get_preset("mondrian"), 6)
        e = model.phase_energy(EnergyEvents(), 1.0, 0.3)
        assert e.serdes_noc_j > 0

    def test_input_validation(self):
        model = EnergyModel(get_preset("cpu"), 4)
        with pytest.raises(ValueError):
            model.phase_energy(EnergyEvents(), -1.0, 0.5)
        with pytest.raises(ValueError):
            model.phase_energy(EnergyEvents(), 1.0, 1.5)


class TestMemEnvironment:
    def test_cache_level_classification(self):
        cpu = get_preset("cpu")
        assert rand_region_cache_level(cpu, 1024) == "l1"
        assert rand_region_cache_level(cpu, 100 * 1024) == "llc"
        assert rand_region_cache_level(cpu, 64 << 20) == "memory"
        mon = get_preset("mondrian")
        assert rand_region_cache_level(mon, 100 * 1024) == "memory"

    def test_llc_share_divided_by_cores(self):
        # 512 KB per-core region on a 4 MB LLC shared by 16 cores thrashes.
        cpu = get_preset("cpu")
        assert rand_region_cache_level(cpu, 512 * 1024) == "memory"

    def test_cpu_latency_exceeds_nmp(self):
        cpu_cfg, cpu_topo = make_topology("cpu")
        mon_cfg, mon_topo = make_topology("mondrian")
        phase = probe_phase(rand_reads=100, rand_region_b=1 << 29)
        cpu_env = derive_mem_environment(cpu_cfg, cpu_topo, phase)
        mon_env = derive_mem_environment(mon_cfg, mon_topo, phase)
        assert cpu_env.rand_latency_ns > mon_env.rand_latency_ns * 1.5

    def test_nmp_seq_bw_near_vault_peak(self):
        cfg, topo = make_topology("mondrian")
        env = derive_mem_environment(cfg, topo, probe_phase())
        assert env.seq_bw_bps == pytest.approx(8e9)

    def test_cpu_seq_bw_link_and_prefetch_limited(self):
        cfg, topo = make_topology("cpu")
        env = derive_mem_environment(cfg, topo, probe_phase())
        assert env.seq_bw_bps <= 80e9 / 16


class TestPhaseEvaluator:
    def test_probe_phase_time_positive(self):
        cfg, topo = make_topology("mondrian")
        ev = PhaseEvaluator(cfg, topo)
        perf = ev.evaluate(probe_phase(seq_read_b=1e9))
        assert perf.time_ns > 0
        assert perf.events.dram_bytes == pytest.approx(1e9)
        assert perf.events.dram_activations == pytest.approx(1e9 / 256)

    def test_shuffle_caps_applied(self):
        cfg, topo = make_topology("nmp-perm")
        ev = PhaseEvaluator(cfg, topo)
        phase = PhaseCost(
            name="d", category=PHASE_DISTRIBUTE, instructions=1e6,
            seq_read_b=1e9, shuffle_b=1e9, permutable_writes=True,
        )
        perf = ev.evaluate(phase)
        assert "network" in perf.limits and "dest_dram" in perf.limits

    def test_permutable_vs_addressed_activations(self):
        cfg_a, topo_a = make_topology("nmp-rand")
        cfg_p, topo_p = make_topology("nmp-perm")
        shuffle = dict(
            name="d", category=PHASE_DISTRIBUTE, instructions=1e6,
            seq_read_b=1e8, shuffle_b=1e8, rand_writes=1e8 / 16,
        )
        addr = PhaseEvaluator(cfg_a, topo_a).evaluate(
            PhaseCost(permutable_writes=False, **shuffle)
        )
        perm = PhaseEvaluator(cfg_p, topo_p).evaluate(
            PhaseCost(permutable_writes=True, **shuffle)
        )
        assert perm.events.dram_activations * 3 < addr.events.dram_activations

    def test_llc_resident_region_no_dram_randoms(self):
        cfg, topo = make_topology("cpu")
        ev = PhaseEvaluator(cfg, topo)
        perf = ev.evaluate(
            probe_phase(rand_reads=1e6, rand_region_b=64 * 1024)  # fits LLC share
        )
        assert perf.events.llc_accesses >= 1e6
        assert perf.events.dram_activations == 0

    def test_utilization_bounds(self):
        cfg, topo = make_topology("cpu")
        perf = PhaseEvaluator(cfg, topo).evaluate(probe_phase())
        assert 0.3 <= perf.core_utilization <= 1.0

    def test_achieved_bw(self):
        cfg, topo = make_topology("mondrian")
        perf = PhaseEvaluator(cfg, topo).evaluate(probe_phase(seq_read_b=1e9))
        assert perf.achieved_bw_bps > 0


class TestResultMetrics:
    def _result(self, runtime_scale=1.0, energy_scale=1.0):
        cfg, topo = make_topology("cpu")
        perf = PhaseEvaluator(cfg, topo).evaluate(
            probe_phase(instructions=1e6 * runtime_scale)
        )
        return SystemResult(
            system="cpu", operator="scan", variant="v", phase_perfs=[perf],
            energy=EnergyBreakdown(core_j=1.0 * energy_scale), output=None,
        )

    def test_speedup(self):
        slow = self._result(runtime_scale=10)
        fast = self._result(runtime_scale=1)
        assert speedup(slow, fast) == pytest.approx(10.0, rel=0.01)

    def test_efficiency_improvement_is_energy_ratio(self):
        hungry = self._result(energy_scale=4.0)
        frugal = self._result(energy_scale=1.0)
        assert efficiency_improvement(hungry, frugal) == pytest.approx(4.0)

    def test_summary_fields(self):
        s = self._result().summary()
        assert set(s) == {"runtime_s", "partition_s", "probe_s", "energy_j", "avg_power_w"}

    def test_phase_lookup(self):
        r = self._result()
        assert r.phase("p").phase.name == "p"
        with pytest.raises(KeyError):
            r.phase("missing")
