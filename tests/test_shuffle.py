"""Tests for the partitioning-phase shuffle: interleaving models, the
engine's addressed and permutable disciplines, and the barrier protocol."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics.tuples import Relation
from repro.shuffle import (
    ShuffleEngine,
    random_interleave,
    round_robin_interleave,
)


def relation(keys, name="r"):
    return Relation.from_arrays(
        np.array(keys, dtype=np.uint64),
        np.array(keys, dtype=np.uint64) * np.uint64(7),
        name,
    )


def arrival_pairs(order):
    """(sources, indices) arrays -> list of (src, idx) tuples."""
    sources, indices = order
    return list(zip(sources.tolist(), indices.tolist()))


class TestInterleave:
    def test_round_robin_order(self):
        assert arrival_pairs(round_robin_interleave([2, 2])) == [
            (0, 0), (1, 0), (0, 1), (1, 1)
        ]

    def test_round_robin_uneven(self):
        assert arrival_pairs(round_robin_interleave([3, 1])) == [
            (0, 0), (1, 0), (0, 1), (0, 2)
        ]

    def test_round_robin_total(self):
        sources, indices = round_robin_interleave([5, 0, 3, 7])
        assert len(sources) == len(indices) == 15
        assert sources.dtype == np.int64 and indices.dtype == np.int64

    def test_round_robin_empty(self):
        sources, indices = round_robin_interleave([])
        assert len(sources) == 0 and len(indices) == 0

    def test_random_preserves_per_source_fifo(self):
        order = arrival_pairs(random_interleave([10, 10], seed=3))
        for src in (0, 1):
            idxs = [i for s, i in order if s == src]
            assert idxs == sorted(idxs)

    def test_random_deterministic_by_seed(self):
        assert arrival_pairs(random_interleave([5, 5], seed=1)) == arrival_pairs(
            random_interleave([5, 5], seed=1)
        )
        assert arrival_pairs(random_interleave([5, 5], seed=1)) != arrival_pairs(
            random_interleave([5, 5], seed=2)
        )


class TestShuffleEngine:
    def _run(self, permutable, interleave=round_robin_interleave):
        sources = [relation([0, 1, 2, 3]), relation([4, 5, 6, 7])]
        dests = [np.array([0, 1, 0, 1]), np.array([1, 0, 1, 0])]
        engine = ShuffleEngine(2, permutable=permutable, interleave=interleave)
        return engine.run(sources, dests), sources, dests

    def test_addressed_places_by_offset(self):
        result, sources, dests = self._run(permutable=False)
        # Destination 0 gets source0's {0,2} then source1's {5,7}.
        assert list(result.destinations[0].keys) == [0, 2, 5, 7]
        assert list(result.destinations[1].keys) == [1, 3, 4, 6]

    def test_permutable_preserves_multiset(self):
        addr, _, _ = self._run(permutable=False)
        perm, _, _ = self._run(permutable=True)
        for d in range(2):
            assert perm.destinations[d].multiset_equal(addr.destinations[d])

    def test_permutable_trace_is_sequential(self):
        result, _, _ = self._run(permutable=True)
        for trace in result.write_traces:
            assert list(trace) == [i * 16 for i in range(len(trace))]

    def test_addressed_trace_is_interleaved(self):
        result, _, _ = self._run(permutable=False)
        # Round-robin across two sources writing to disjoint halves: the
        # arrival-order addresses jump between the halves.
        trace = list(result.write_traces[0])
        assert trace != sorted(trace)

    def test_barrier_completed(self):
        result, _, _ = self._run(permutable=True)
        assert result.barrier.all_complete()

    def test_inbound_histograms(self):
        result, _, _ = self._run(permutable=False)
        assert list(result.inbound_histograms[0]) == [2, 2]
        assert result.total_tuples == 8

    def test_permutable_insensitive_to_interleave_model(self):
        from functools import partial
        rr, _, _ = self._run(True, round_robin_interleave)
        rnd, _, _ = self._run(True, partial(random_interleave, seed=5))
        for d in range(2):
            assert rr.destinations[d].multiset_equal(rnd.destinations[d])

    def test_mismatched_inputs_rejected(self):
        engine = ShuffleEngine(2)
        with pytest.raises(ValueError):
            engine.run([relation([1])], [])
        with pytest.raises(ValueError):
            engine.run([relation([1, 2])], [np.array([0])])

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            ShuffleEngine(0)
        with pytest.raises(ValueError):
            ShuffleEngine(2, object_b=0)
        with pytest.raises(ValueError):
            ShuffleEngine(2).run([relation([1])], [np.array([0])], overprovision=0.5)

    @given(
        st.lists(
            st.lists(st.integers(0, 1 << 30), min_size=0, max_size=30),
            min_size=1,
            max_size=6,
        ),
        st.integers(1, 5),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_no_tuples_lost(self, source_keys, num_dest, permutable):
        sources = [relation(keys, f"s{i}") for i, keys in enumerate(source_keys)]
        rng = np.random.default_rng(42)
        dests = [
            rng.integers(0, num_dest, size=len(keys)).astype(np.int64)
            for keys in source_keys
        ]
        engine = ShuffleEngine(num_dest, permutable=permutable)
        result = engine.run(sources, dests)
        all_in = sorted(k for keys in source_keys for k in keys)
        all_out = sorted(
            int(k) for d in result.destinations for k in d.keys
        )
        assert all_in == all_out

    @given(st.integers(2, 40), st.integers(1, 4), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_property_routing_respected(self, n, num_dest, permutable):
        rng = np.random.default_rng(n)
        keys = rng.integers(0, 1 << 20, n, dtype=np.uint64)
        dest = rng.integers(0, num_dest, n).astype(np.int64)
        engine = ShuffleEngine(num_dest, permutable=permutable)
        result = engine.run([Relation.from_arrays(keys, keys)], [dest])
        for d in range(num_dest):
            expected = sorted(int(k) for k, dd in zip(keys, dest) if dd == d)
            got = sorted(int(k) for k in result.destinations[d].keys)
            assert expected == got
