"""Report-generator tests: sections, charts, CLI, determinism.

The report is a pure function of its inputs (experiment outputs at a
given scale/seed, records files, the BENCH_* trajectory), so two
invocations must produce byte-identical HTML.  Charts are checked
structurally -- well-formed SVG, the right number of marks, legends for
multi-series charts, a table view beside every chart.
"""

import json
import re
import xml.etree.ElementTree as ET
from pathlib import Path

import pytest

from repro.report import (
    render_bench,
    render_figures,
    render_pipelines,
    render_suites,
    render_sweep,
)
from repro.report.__main__ import SECTIONS, build_parser, render_report
from repro.report.charts import grouped_bars, heatmap, html_table

ROOT = Path(__file__).resolve().parents[1]
SWEEP_RECORDS = json.loads((ROOT / "tests/data/sweep_smoke_golden.json").read_text())
SUITE_RECORDS = json.loads((ROOT / "tests/data/suites_smoke_golden.json").read_text())


def _svgs(html: str):
    blocks = re.findall(r"<svg.*?</svg>", html, re.DOTALL)
    return [ET.fromstring(block) for block in blocks]


class TestCharts:
    def test_grouped_bars_structure(self):
        values = {"a": {"s1": 1.0, "s2": 2.0}, "b": {"s1": 3.0, "s2": 4.0}}
        svg = ET.fromstring(
            grouped_bars(["a", "b"], ["s1", "s2"], lambda g, s: values[g][s],
                         unit="x")
        )
        bars = [el for el in svg.iter() if el.tag == "path"]
        assert len(bars) == 4
        fills = {el.get("fill") for el in bars}
        assert fills == {"var(--series-1)", "var(--series-2)"}
        labels = [el.text for el in svg.iter() if el.tag == "text"]
        assert "4x" in labels  # the peak (and only the peak) is labeled

    def test_heatmap_is_sequential_with_value_labels(self):
        values = {("r1", "c1"): 1.0, ("r1", "c2"): 2.0,
                  ("r2", "c1"): 3.0, ("r2", "c2"): 4.0}
        svg = ET.fromstring(heatmap(["r1", "r2"], ["c1", "c2"], values))
        cells = [el for el in svg.iter() if el.tag == "rect"]
        assert len(cells) == 4
        assert all(el.get("fill").startswith("#") for el in cells)
        texts = [el.text for el in svg.iter() if el.tag == "text"]
        for value in ("1", "2", "3", "4"):
            assert value in texts  # every cell carries its number

    def test_html_table_escapes_and_marks_winners(self):
        table = html_table(["A"], [["<b>raw</b>"]], winners={(0, 0)})
        assert "&lt;b&gt;raw&lt;/b&gt;" in table and 'class="win"' in table


class TestSections:
    def test_figures_section(self):
        html = render_figures(50.0)
        assert '<section id="figures"' in html
        for figure in ("Figure 6", "Figure 7", "Figure 8", "Figure 9"):
            assert figure in html
        svgs = _svgs(html)
        assert len(svgs) == 4
        assert html.count("<table>") == 4  # every chart has its table view
        assert html.count('class="legend"') == 4

    def test_pipelines_section_names_bottlenecks(self):
        html = render_pipelines(50.0)
        assert '<section id="pipelines"' in html
        assert "bottleneck:" in html and "-bound)" in html
        assert _svgs(html)

    def test_sweep_section(self):
        html = render_sweep(SWEEP_RECORDS)
        assert '<section id="sweep"' in html
        svg = _svgs(html)[0]
        cells = [el for el in svg.iter() if el.tag == "rect"]
        assert len(cells) == 4  # 2 systems x 2 workloads

    def test_suites_section_tiers_and_winners(self):
        html = render_suites(SUITE_RECORDS)
        assert '<section id="suites"' in html
        assert "Per-suite tiers" in html and "Family winners" in html
        assert "A *" in html  # each suite's winner is tier A, starred

    def test_bench_section_gate(self, tmp_path):
        def bench_file(name, means):
            payload = {"benchmarks": [
                {"name": bench, "stats": {"min": value}}
                for bench, value in means.items()
            ]}
            (tmp_path / name).write_text(json.dumps(payload))

        bench_file("BENCH_PR1.json", {"a": 1.0, "b": 2.0})
        bench_file("BENCH_PR2.json", {"a": 0.5, "b": 2.5})  # b regressed 25%
        html = render_bench(tmp_path, gate_pct=10.0)
        assert "FAIL (1)" in html and "FAILING" in html
        bench_file("BENCH_PR2.json", {"a": 0.5, "b": 2.0})
        html = render_bench(tmp_path, gate_pct=10.0)
        assert "FAIL" not in html and "passing" in html

    def test_bench_section_needs_two_points(self, tmp_path):
        html = render_bench(tmp_path)
        assert "nothing to compare yet" in html


class TestCli:
    def test_parser_flags(self):
        flags = {
            opt for action in build_parser()._actions
            for opt in action.option_strings
        }
        assert {"--out", "--sections", "--scale", "--fast", "--seed",
                "--sweep", "--suites", "--bench-dir"} <= flags

    def test_unknown_section_rejected(self, tmp_path):
        from repro.report.__main__ import main

        with pytest.raises(SystemExit, match="unknown sections"):
            main(["--out", str(tmp_path / "r.html"), "--sections", "nope"])

    def test_sweep_section_requires_records(self, tmp_path):
        from repro.report.__main__ import main

        with pytest.raises(SystemExit, match="--sweep"):
            main(["--out", str(tmp_path / "r.html"), "--sections", "sweep"])

    def test_report_is_deterministic_and_self_contained(self, tmp_path):
        args = build_parser().parse_args([
            "--out", "-", "--sections", "sweep,suites,bench",
            "--sweep", str(ROOT / "tests/data/sweep_smoke_golden.json"),
            "--suites", str(ROOT / "tests/data/suites_smoke_golden.json"),
            "--bench-dir", str(ROOT),
        ])
        first, second = render_report(args), render_report(args)
        assert first == second  # byte-identical on re-render
        assert first.startswith("<!DOCTYPE html>")
        # Self-contained: no external scripts, stylesheets or images.
        for marker in ("<script", "<link", "<img", "http://", "https://"):
            assert marker not in first.replace("https://ui.perfetto.dev", "")
        # Both themes ship in one file.
        assert "prefers-color-scheme: dark" in first
        assert '[data-theme="dark"]' in first

    def test_main_writes_file(self, tmp_path, capsys):
        from repro.report.__main__ import main

        out = tmp_path / "report.html"
        main(["--out", str(out), "--sections", "bench",
              "--bench-dir", str(ROOT)])
        assert out.is_file()
        assert '<section id="bench"' in out.read_text()
        assert "wrote report to" in capsys.readouterr().err

    def test_sections_constant_is_complete(self):
        assert SECTIONS == ("figures", "pipelines", "sweep", "suites", "bench")
