"""Tests for the discrete-event kernel and statistics collectors."""

import pytest

from repro.engine import Counter, Event, EventKind, Histogram, RateTracker, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda s: order.append("c"))
        sim.schedule(10, lambda s: order.append("a"))
        sim.schedule(20, lambda s: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(10, lambda s, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(5, lambda s: times.append(s.now_ns))
        sim.schedule(15, lambda s: times.append(s.now_ns))
        final = sim.run()
        assert times == [5, 15]
        assert final == 15

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []
        def first(s):
            seen.append(s.now_ns)
            s.schedule(10, lambda s2: seen.append(s2.now_ns))
        sim.schedule(1, first)
        sim.run()
        assert seen == [1, 11]

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(10, lambda s: fired.append(1))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda s: fired.append(1))
        sim.schedule(100, lambda s: fired.append(2))
        sim.run(until_ns=50)
        assert fired == [1]
        assert sim.now_ns == 50
        sim.run()
        assert fired == [1, 2]

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i + 1, lambda s: None)
        sim.run(max_events=3)
        assert sim.events_run == 3
        assert sim.pending == 7

    def test_rejects_past(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda s: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule(5, lambda s: s.schedule_at(20, lambda s2: seen.append(s2.now_ns)))
        sim.run()
        assert seen == [20]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_event_kind_tag(self):
        ev = Event(0.0, 0, lambda s: None, EventKind.MEMORY)
        assert ev.kind is EventKind.MEMORY


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("hits")
        c.add("hits", 2)
        assert c.get("hits") == 3
        assert c.get("missing") == 0

    def test_monotonic(self):
        with pytest.raises(ValueError):
            Counter().add("x", -1)

    def test_merge(self):
        a, b = Counter(), Counter()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 5)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 5

    def test_snapshot_is_copy(self):
        c = Counter()
        c.add("x")
        snap = c.snapshot()
        snap["x"] = 99
        assert c.get("x") == 1


class TestHistogram:
    def test_bucketing(self):
        h = Histogram([10, 20, 30])
        for v in (5, 15, 25, 35, 100):
            h.record(v)
        assert h.bucket_counts() == [1, 1, 1, 2]
        assert h.count == 5

    def test_mean(self):
        h = Histogram([100])
        assert h.mean is None
        h.record(10)
        h.record(20)
        assert h.mean == 15

    def test_rejects_unsorted_or_empty(self):
        with pytest.raises(ValueError):
            Histogram([3, 1])
        with pytest.raises(ValueError):
            Histogram([])


class TestRateTracker:
    def test_rate(self):
        r = RateTracker()
        r.record(0.0, 100)
        r.record(100.0, 100)  # 200 bytes over 100 ns
        assert r.total == 200
        assert r.rate_per_s() == pytest.approx(200 / 100e-9)

    def test_insufficient_data(self):
        r = RateTracker()
        assert r.rate_per_s() is None
        r.record(5.0, 10)
        assert r.rate_per_s() is None  # zero-length window

    def test_rejects_time_reversal(self):
        r = RateTracker()
        r.record(10.0, 1)
        with pytest.raises(ValueError):
            r.record(5.0, 1)

    def test_rejects_negative_amount(self):
        with pytest.raises(ValueError):
            RateTracker().record(0.0, -1)
