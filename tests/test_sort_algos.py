"""Tests for the sorting kernels: merge pass, bitonic networks,
mergesort, quicksort, and pass counting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics.tuples import TUPLE_DTYPE, Relation
from repro.operators.sort_algos import (
    bitonic_sort_runs,
    merge_pass,
    merge_passes_needed,
    mergesort,
    quicksort,
)


def make_tuples(keys):
    data = np.empty(len(keys), dtype=TUPLE_DTYPE)
    data["key"] = np.array(keys, dtype=np.uint64)
    data["payload"] = np.arange(len(keys), dtype=np.uint64)
    return data


def random_tuples(n, seed=0):
    rng = np.random.default_rng(seed)
    data = np.empty(n, dtype=TUPLE_DTYPE)
    data["key"] = rng.integers(0, 1 << 40, n, dtype=np.uint64)
    data["payload"] = rng.integers(0, 1 << 40, n, dtype=np.uint64)
    return data


def is_key_sorted(data):
    k = data["key"]
    return bool(np.all(k[:-1] <= k[1:])) if len(k) > 1 else True


class TestMergePass:
    def test_merges_adjacent_runs(self):
        data = make_tuples([2, 4, 1, 3])
        out = merge_pass(data, run_len=2)
        assert list(out["key"]) == [1, 2, 3, 4]

    def test_odd_tail_run_preserved(self):
        data = make_tuples([2, 4, 1, 3, 0])
        out = merge_pass(data, run_len=2)
        assert list(out["key"]) == [1, 2, 3, 4, 0]  # lone tail untouched

    def test_stability_within_merge(self):
        data = make_tuples([1, 1, 1, 1])
        out = merge_pass(data, run_len=2)
        assert list(out["payload"]) == [0, 1, 2, 3]

    def test_rejects_bad_run(self):
        with pytest.raises(ValueError):
            merge_pass(make_tuples([1]), 0)


class TestBitonic:
    def test_sorts_runs_of_16(self):
        data = random_tuples(64, seed=1)
        out, steps = bitonic_sort_runs(data, 16)
        for i in range(0, 64, 16):
            assert is_key_sorted(out[i : i + 16])
        # Bitonic network over 16 keys: 1+2+3+4 = 10 stages.
        assert steps == 10

    def test_handles_partial_tail(self):
        data = random_tuples(20, seed=2)
        out, _ = bitonic_sort_runs(data, 16)
        assert len(out) == 20
        assert is_key_sorted(out[:16])
        assert sorted(out["key"].tolist()) == sorted(data["key"].tolist())

    def test_empty(self):
        out, steps = bitonic_sort_runs(random_tuples(0), 16)
        assert len(out) == 0 and steps == 0

    def test_rejects_non_pow2_run(self):
        with pytest.raises(ValueError):
            bitonic_sort_runs(random_tuples(8), 12)

    def test_preserves_multiset(self):
        data = random_tuples(100, seed=3)
        out, _ = bitonic_sort_runs(data, 16)
        assert sorted(zip(out["key"], out["payload"])) == sorted(
            zip(data["key"], data["payload"])
        )


class TestMergesort:
    @pytest.mark.parametrize("n", [0, 1, 2, 15, 16, 17, 100, 1000])
    def test_sorts(self, n):
        data = random_tuples(n, seed=n)
        out, stats = mergesort(data)
        assert is_key_sorted(out)
        assert len(out) == n
        assert stats.n == n

    @pytest.mark.parametrize("n", [16, 100, 1000])
    def test_bitonic_seeded_sorts(self, n):
        data = random_tuples(n, seed=n + 1)
        out, stats = mergesort(data, bitonic_initial=True)
        assert is_key_sorted(out)
        assert stats.bitonic_steps > 0
        assert stats.initial_run == 16

    def test_bitonic_reduces_passes_by_four(self):
        data = random_tuples(1024, seed=7)
        _, plain = mergesort(data)
        _, seeded = mergesort(data, bitonic_initial=True)
        assert plain.merge_passes == 10  # log2(1024)
        assert seeded.merge_passes == 6  # log2(1024/16)

    def test_preserves_multiset(self):
        data = random_tuples(500, seed=9)
        out, _ = mergesort(data, bitonic_initial=True)
        assert sorted(zip(out["key"], out["payload"])) == sorted(
            zip(data["key"], data["payload"])
        )

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            mergesort(np.zeros(4))

    @given(st.lists(st.integers(0, 1 << 40), min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_numpy(self, keys):
        data = make_tuples(keys)
        out, _ = mergesort(data)
        assert list(out["key"]) == sorted(keys)


class TestQuicksort:
    def test_sorts(self):
        data = random_tuples(333, seed=11)
        out, stats = quicksort(data)
        assert is_key_sorted(out)
        assert stats.merge_passes >= 1

    def test_stable(self):
        data = make_tuples([2, 1, 2, 1])
        out, _ = quicksort(data)
        assert list(out["key"]) == [1, 1, 2, 2]
        assert list(out["payload"]) == [1, 3, 0, 2]


class TestPassCounting:
    def test_two_way(self):
        assert merge_passes_needed(1024, 1, 2) == 10
        assert merge_passes_needed(1024, 16, 2) == 6
        assert merge_passes_needed(1, 1, 2) == 0
        assert merge_passes_needed(0, 1, 2) == 0

    def test_multiway_reduces_passes(self):
        assert merge_passes_needed(1 << 20, 16, 8) == 6   # 8^6 * 16 >= 2^20
        assert merge_passes_needed(1 << 20, 16, 2) == 16
        assert merge_passes_needed(1 << 20, 16, 8) < merge_passes_needed(1 << 20, 16, 2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            merge_passes_needed(10, 0)
        with pytest.raises(ValueError):
            merge_passes_needed(10, 1, way=1)
