"""Determinism audit: fault schedules replay identically across processes.

Extends the ``run_all --jobs`` parity pattern: two *fresh* interpreter
processes evaluating the same grid under the same ``--faults`` overrides
must print byte-identical exports -- the schedules are pure functions of
(seed, salt, shuffle shape), never of process state.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec, stream_salt

ROOT = Path(__file__).resolve().parents[1]

FAULTS_JSON = '{"seed": 19, "drop_prob": 0.3, "straggler_prob": 0.4, "duplicate_prob": 0.2}'


def run_api_sweep(*extra):
    """One fresh-process ``python -m repro.api`` export."""
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.api",
            "--system", "mondrian", "--system", "nmp-perm",
            "--workload", "join", "--workload", "sort",
            "--scale", "40", "--partitions", "8",
            "--faults", FAULTS_JSON,
            "--json", "-",
            *extra,
        ],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src"), "REPRO_STORE": ""},
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestCrossProcessDeterminism:
    def test_two_fresh_processes_identical(self):
        first, second = run_api_sweep(), run_api_sweep()
        assert hashlib.sha256(first.encode()).hexdigest() == \
            hashlib.sha256(second.encode()).hexdigest()
        # Sanity: the export actually carries the resilience columns.
        assert '"retries"' in first

    def test_jobs_pool_matches_sequential(self):
        assert run_api_sweep() == run_api_sweep("--jobs", "4")


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        spec = FaultSpec(seed=5, drop_prob=0.5, straggler_prob=0.5,
                         duplicate_prob=0.5, timeout_prob=0.5)
        a = FaultPlan.build(spec, 8, 16, salt=3)
        b = FaultPlan.build(spec, 8, 16, salt=3)
        assert np.array_equal(a.straggler_factor, b.straggler_factor)
        assert np.array_equal(a.drop_rounds, b.drop_rounds)
        assert np.array_equal(a.duplicates, b.duplicates)
        assert np.array_equal(a.timeout_rounds, b.timeout_rounds)

    def test_salt_separates_streams(self):
        spec = FaultSpec(seed=5, drop_prob=0.5)
        r = FaultPlan.build(spec, 8, 16, salt=stream_salt("R-"))
        s = FaultPlan.build(spec, 8, 16, salt=stream_salt("S-"))
        assert not np.array_equal(r.drop_rounds, s.drop_rounds)

    def test_shape_keys_the_schedule(self):
        spec = FaultSpec(seed=5, drop_prob=0.5)
        a = FaultPlan.build(spec, 8, 16)
        b = FaultPlan.build(spec, 4, 16)
        assert not np.array_equal(a.drop_rounds[:4], b.drop_rounds)

    def test_seed_changes_the_schedule(self):
        base = FaultSpec(seed=5, drop_prob=0.5, timeout_prob=0.5)
        a = FaultPlan.build(base, 8, 16)
        b = FaultPlan.build(base.with_overrides(seed=6), 8, 16)
        assert (not np.array_equal(a.drop_rounds, b.drop_rounds)
                or not np.array_equal(a.timeout_rounds, b.timeout_rounds))
