"""Property suite: fault injection never changes functional output.

The tentpole invariant of ``repro.faults``: for *any* seeded fault
schedule, the shuffle's materialized destinations (and therefore every
operator's output) are byte-identical to the fault-free run -- faults
only change what the protocol paid.  Pinned three ways:

- randomized fault schedules x shapes x write disciplines at the
  shuffle-engine level (hypothesis plus a 200+ schedule bulk sweep;
  every assertion message carries the seeds to reproduce a failure);
- the three shuffle materialization paths (segmented / vectorized /
  scalar) stay byte-identical *to each other* under the same schedule,
  resilience stats included;
- machine-level operator runs across presets, and the service codec
  round-trip of the resilience metadata.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.workload import (
    make_groupby_workload,
    make_join_workload,
    make_sort_workload,
)
from repro.config.system import get_preset
from repro.faults.plan import FaultPlan, FaultSpec
from repro.service.codec import result_from_document, result_to_document
from repro.shuffle.engine import ShuffleEngine
from repro.systems.machine import Machine
from tests.test_vectorized_equivalence import (
    assert_shuffles_identical,
    make_sources,
)


def engine(num_dest, faults=None, salt=0, **kwargs):
    return ShuffleEngine(num_dest, faults=faults, fault_salt=salt, **kwargs)


def run_pair(rng_seed, fault_spec, num_src=4, num_dest=6, n_per_src=200,
             skew=True, permutable=True, **engine_kwargs):
    """One shuffle under ``fault_spec`` and its fault-free twin."""
    rng = np.random.default_rng(rng_seed)
    sources, dest_maps = make_sources(rng, num_src, num_dest, n_per_src, skew)
    faulted = engine(
        num_dest, faults=fault_spec, permutable=permutable, **engine_kwargs
    ).run(sources, dest_maps)
    clean = engine(
        num_dest, permutable=permutable, **engine_kwargs
    ).run(sources, dest_maps)
    return faulted, clean


specs = st.builds(
    FaultSpec,
    seed=st.integers(0, 2**31 - 1),
    straggler_prob=st.floats(0.0, 1.0),
    straggler_slowdown=st.floats(1.0, 16.0),
    drop_prob=st.floats(0.0, 1.0),
    duplicate_prob=st.floats(0.0, 1.0),
    timeout_prob=st.floats(0.0, 1.0),
    max_retries=st.integers(1, 6),
    backoff_base=st.floats(0.0, 4.0),
)


class TestShuffleInvariance:
    @settings(max_examples=60, deadline=None)
    @given(spec=specs, rng_seed=st.integers(0, 2**20),
           permutable=st.booleans())
    def test_output_identical_under_any_schedule(self, spec, rng_seed,
                                                 permutable):
        faulted, clean = run_pair(rng_seed, spec, permutable=permutable)
        assert_shuffles_identical(faulted, clean)

    @settings(max_examples=40, deadline=None)
    @given(spec=specs, rng_seed=st.integers(0, 2**20))
    def test_all_paths_agree_under_faults(self, spec, rng_seed):
        """Segmented, per-destination and scalar paths stay identical."""
        rng = np.random.default_rng(rng_seed)
        sources, dest_maps = make_sources(rng, 4, 6, 150, skew=True)
        runs = [
            engine(6, faults=spec, permutable=True, **kw).run(sources, dest_maps)
            for kw in (
                {},  # segmented (default)
                {"segmented": False},  # per-destination vectorized
                {"segmented": False, "vectorized": False},  # scalar
            )
        ]
        assert_shuffles_identical(runs[0], runs[1])
        assert_shuffles_identical(runs[0], runs[2])
        assert runs[0].resilience == runs[1].resilience == runs[2].resilience

    def test_bulk_schedule_sweep(self):
        """200+ generated schedules, seeds printed on any failure."""
        master = np.random.default_rng(2024)
        checked = 0
        for trial in range(200):
            rng_seed = int(master.integers(0, 2**30))
            spec = FaultSpec(
                seed=int(master.integers(0, 2**30)),
                straggler_prob=float(master.random()),
                straggler_slowdown=1.0 + 7.0 * float(master.random()),
                drop_prob=float(master.random()),
                duplicate_prob=float(master.random()),
                timeout_prob=float(master.random()),
                max_retries=int(master.integers(1, 6)),
                backoff_base=2.0 * float(master.random()),
            )
            permutable = bool(trial % 2)
            n_per_src = (0, 5, 80, 400)[trial % 4]
            ctx = (f"trial={trial} rng_seed={rng_seed} spec={spec} "
                   f"permutable={permutable} n_per_src={n_per_src}")
            try:
                faulted, clean = run_pair(
                    rng_seed, spec, num_src=3 + trial % 4,
                    num_dest=2 + trial % 7, n_per_src=n_per_src,
                    permutable=permutable,
                )
                assert_shuffles_identical(faulted, clean)
            except AssertionError as exc:  # pragma: no cover
                raise AssertionError(f"{ctx}: {exc}") from exc
            if faulted.resilience is not None:
                assert faulted.resilience.overhead_b >= 0.0, ctx
            checked += 1
        assert checked == 200

    def test_null_spec_collects_no_stats(self):
        faulted, clean = run_pair(5, FaultSpec())
        assert faulted.resilience is None
        assert clean.resilience is None


OPERATORS = (
    ("join", lambda: make_join_workload(1500, 3000, num_partitions=8, seed=9)),
    ("sort", lambda: make_sort_workload(2500, num_partitions=8, seed=9)),
    ("groupby", lambda: make_groupby_workload(2500, num_partitions=8, seed=9)),
)


class TestMachineInvariance:
    @pytest.mark.parametrize("preset", ["cpu", "nmp-perm", "mondrian"])
    @pytest.mark.parametrize("op,make", OPERATORS, ids=[o for o, _ in OPERATORS])
    def test_operator_output_identical(self, preset, op, make):
        workload = make()
        spec = FaultSpec(seed=13, straggler_prob=0.4, drop_prob=0.35,
                         duplicate_prob=0.25, timeout_prob=0.3)
        clean = Machine(get_preset(preset)).run_operator(op, workload)
        faulty_cfg = replace(get_preset(preset), faults=spec)
        faulty = Machine(faulty_cfg).run_operator(op, workload)
        assert faulty.output == clean.output
        assert "resilience" in faulty.metadata
        assert "resilience" not in clean.metadata
        clean_t = sum(p.time_ns for p in clean.phase_perfs)
        faulty_t = sum(p.time_ns for p in faulty.phase_perfs)
        assert faulty_t >= clean_t

    def test_segmented_matches_scalar_under_faults(self):
        spec = FaultSpec(seed=3, drop_prob=0.5, duplicate_prob=0.3,
                         straggler_prob=0.3)
        cfg = replace(get_preset("mondrian"), faults=spec)
        machine = Machine(cfg)
        for op, make in OPERATORS:
            workload = make()
            seg = machine.run_operator(op, workload, segmented=True)
            ref = machine.run_operator(op, workload, segmented=False)
            assert seg.output == ref.output, op
            assert seg.metadata["resilience"] == ref.metadata["resilience"], op

    def test_resilience_survives_codec_round_trip(self):
        spec = FaultSpec(seed=11, drop_prob=0.4, straggler_prob=0.5,
                         timeout_prob=0.5)
        cfg = replace(get_preset("mondrian"), faults=spec)
        result = Machine(cfg).run_operator(
            "join", make_join_workload(1000, 2000, num_partitions=8, seed=4)
        )
        restored = result_from_document(result_to_document(result))
        assert restored.metadata["resilience"] == result.metadata["resilience"]
        for orig, back in zip(result.phase_perfs, restored.phase_perfs):
            assert back.phase.retry_shuffle_b == orig.phase.retry_shuffle_b
            assert back.phase.backoff_stall_b == orig.phase.backoff_stall_b
