"""Tests for the DRAM bank/vault event models and the analytic estimators,
including the cross-validation between the two."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.dram import DramTiming, HmcGeometry
from repro.dram import (
    Bank,
    InterleavedWrites,
    RandomAccesses,
    SequentialStream,
    VaultMemory,
    estimate_pattern,
)
from repro.dram.vault import VaultRequest

GEO = HmcGeometry()
TIMING = DramTiming()


class TestBank:
    def make(self):
        return Bank(timing=TIMING, row_size_b=256)

    def test_first_access_activates(self):
        bank = self.make()
        done = bank.serve(0.0, row=3, size_b=64, is_write=False)
        assert bank.stats.activations == 1
        assert bank.stats.row_misses == 1
        assert bank.open_row == 3
        # Closed bank: activate (tRCD) + CAS.
        assert done == pytest.approx(TIMING.t_rcd_ns + TIMING.t_cas_ns)

    def test_row_hit_pays_cas_only(self):
        bank = self.make()
        t1 = bank.serve(0.0, row=3, size_b=64, is_write=False)
        t2 = bank.serve(t1, row=3, size_b=64, is_write=False)
        assert bank.stats.row_hits == 1
        assert t2 - t1 == pytest.approx(TIMING.t_cas_ns)

    def test_conflict_pays_precharge(self):
        bank = self.make()
        t1 = bank.serve(0.0, row=1, size_b=64, is_write=False)
        t2 = bank.serve(t1, row=2, size_b=64, is_write=False)
        assert bank.stats.activations == 2
        # Must wait out tRAS before precharging.
        assert t2 >= TIMING.t_ras_ns + TIMING.t_rp_ns + TIMING.t_rcd_ns + TIMING.t_cas_ns - 1e-9

    def test_write_extends_precharge_window(self):
        bank = self.make()
        t1 = bank.serve(0.0, row=1, size_b=64, is_write=True)
        before = bank.precharge_ok_ns
        assert before >= t1 + TIMING.t_wr_ns - 1e-9

    def test_tracks_bytes(self):
        bank = self.make()
        bank.serve(0.0, 0, 64, is_write=False)
        bank.serve(100.0, 0, 32, is_write=True)
        assert bank.stats.bytes_read == 64
        assert bank.stats.bytes_written == 32

    def test_rejects_multirow_access(self):
        with pytest.raises(ValueError):
            self.make().serve(0.0, 0, 512, is_write=False)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            self.make().serve(0.0, 0, 0, is_write=False)

    def test_reset_keeps_stats(self):
        bank = self.make()
        bank.serve(0.0, 1, 64, False)
        bank.reset()
        assert bank.open_row is None
        assert bank.stats.activations == 1

    def test_hit_rate(self):
        bank = self.make()
        assert bank.stats.row_hit_rate is None
        bank.serve(0.0, 0, 64, False)
        bank.serve(50.0, 0, 64, False)
        assert bank.stats.row_hit_rate == pytest.approx(0.5)


class TestVaultMemory:
    def test_sequential_stream_one_activation_per_row(self):
        vault = VaultMemory(GEO, TIMING)
        reqs = [
            VaultRequest(arrival_ns=i * 2.0, addr=i * 256, size_b=256, is_write=False)
            for i in range(32)
        ]
        vault.run_trace(reqs)
        assert vault.stats.activations == 32
        assert vault.stats.bus_bytes == 32 * 256

    def test_multirow_request_split(self):
        vault = VaultMemory(GEO, TIMING)
        vault.run_trace([VaultRequest(0.0, addr=128, size_b=256, is_write=False)])
        # Crosses one row boundary -> two activations.
        assert vault.stats.activations == 2

    def test_repeat_same_row_hits(self):
        vault = VaultMemory(GEO, TIMING)
        reqs = [VaultRequest(i * 50.0, addr=0, size_b=64, is_write=False) for i in range(10)]
        vault.run_trace(reqs)
        assert vault.stats.activations == 1
        assert vault.stats.bank.row_hits == 9

    def test_fr_fcfs_prefers_open_row(self):
        # Interleave two rows in one bank: reordering within the window
        # should recover some locality vs. strict arrival order.
        vault_frfcfs = VaultMemory(GEO, TIMING, scheduler_window=16)
        vault_fifo = VaultMemory(GEO, TIMING, scheduler_window=1)
        rows = [0, 8, 0, 8, 0, 8, 0, 8]  # same bank (8-row stride = same bank 0)
        reqs = [
            VaultRequest(0.0, addr=r * 256, size_b=64, is_write=False) for r in rows
        ]
        vault_frfcfs.run_trace(list(reqs))
        vault_fifo.run_trace(list(reqs))
        assert vault_frfcfs.stats.activations <= vault_fifo.stats.activations

    def test_bus_serialization_caps_bandwidth(self):
        vault = VaultMemory(GEO, TIMING)
        n = 64
        reqs = [VaultRequest(0.0, addr=i * 256, size_b=256, is_write=False) for i in range(n)]
        last = vault.run_trace(reqs)
        bw = vault.stats.bus_bytes / (last * 1e-9)
        assert bw <= GEO.vault_peak_bw_bps * 1.01

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            VaultMemory(GEO, TIMING, scheduler_window=0)

    def test_rejects_bad_request(self):
        with pytest.raises(ValueError):
            VaultRequest(0.0, addr=-1, size_b=64, is_write=False)
        with pytest.raises(ValueError):
            VaultRequest(0.0, addr=0, size_b=0, is_write=False)


class TestAnalyticSequential:
    def test_one_activation_per_row(self):
        est = estimate_pattern(SequentialStream(total_b=256 * 10), GEO, TIMING)
        assert est.activations == 10
        assert est.bytes == 2560

    def test_small_accesses_hit_open_row(self):
        est = estimate_pattern(SequentialStream(total_b=2560, access_b=64), GEO, TIMING)
        assert est.accesses == 40
        assert est.activations == 10
        assert est.row_hit_rate == pytest.approx(0.75)

    def test_empty_stream(self):
        est = estimate_pattern(SequentialStream(total_b=0), GEO, TIMING)
        assert est.accesses == 0
        assert est.activations == 0

    def test_sustainable_is_peak(self):
        est = estimate_pattern(SequentialStream(total_b=1 << 20), GEO, TIMING)
        assert est.sustainable_bw_bps == GEO.vault_peak_bw_bps

    @given(n_rows=st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_matches_event_model(self, n_rows):
        est = estimate_pattern(SequentialStream(total_b=n_rows * 256), GEO, TIMING)
        vault = VaultMemory(GEO, TIMING)
        reqs = [
            VaultRequest(i * 2.0, addr=i * 256, size_b=256, is_write=False)
            for i in range(n_rows)
        ]
        vault.run_trace(reqs)
        assert vault.stats.activations == est.activations


class TestAnalyticRandom:
    def test_large_region_always_misses(self):
        est = estimate_pattern(
            RandomAccesses(count=1000, access_b=64, region_b=1 << 29), GEO, TIMING
        )
        assert est.row_hit_rate < 0.01
        assert est.activations >= 990

    def test_tiny_region_hits(self):
        est = estimate_pattern(
            RandomAccesses(count=1000, access_b=64, region_b=512), GEO, TIMING
        )
        assert est.row_hit_rate == 1.0
        assert est.activations == 0

    def test_latency_between_hit_and_miss(self):
        est = estimate_pattern(
            RandomAccesses(count=100, access_b=64, region_b=1 << 24), GEO, TIMING
        )
        assert TIMING.row_hit_latency_ns <= est.avg_latency_ns <= TIMING.row_miss_latency_ns

    def test_bandwidth_worse_than_sequential(self):
        rand = estimate_pattern(
            RandomAccesses(count=1000, access_b=16, region_b=1 << 29), GEO, TIMING
        )
        seq = estimate_pattern(SequentialStream(total_b=16000), GEO, TIMING)
        assert rand.sustainable_bw_bps < seq.sustainable_bw_bps


class TestAnalyticInterleaved:
    def test_permutable_matches_sequential(self):
        total = 4096 * 16
        perm = estimate_pattern(
            InterleavedWrites(total_b=total, object_b=16, num_sources=63, permutable=True),
            GEO,
            TIMING,
        )
        assert perm.activations == total // 256

    def test_addressed_mostly_misses_with_many_sources(self):
        est = estimate_pattern(
            InterleavedWrites(total_b=4096 * 16, object_b=16, num_sources=63, permutable=False),
            GEO,
            TIMING,
        )
        # 63 interleaved sources vs 8 banks and a 16-deep window.
        assert est.row_hit_rate < 0.25

    def test_few_sources_keep_rows_open(self):
        est = estimate_pattern(
            InterleavedWrites(total_b=4096 * 16, object_b=16, num_sources=4, permutable=False),
            GEO,
            TIMING,
        )
        assert est.row_hit_rate > 0.8

    def test_giant_window_recovers_locality(self):
        # Reordering alone only recovers the locality once the window
        # spans objects_per_row x num_sources messages -- far beyond
        # practical windows (paper section 4.1.2).
        est_realistic = estimate_pattern(
            InterleavedWrites(total_b=4096 * 16, object_b=16, num_sources=63, permutable=False),
            GEO,
            TIMING,
            scheduler_window=128,
        )
        est_giant = estimate_pattern(
            InterleavedWrites(total_b=4096 * 16, object_b=16, num_sources=63, permutable=False),
            GEO,
            TIMING,
            scheduler_window=16 * 63,
        )
        assert est_realistic.row_hit_rate < 0.6
        assert est_giant.row_hit_rate > 0.9

    def test_row_sized_objects_need_no_permutation(self):
        # Paper section 5.3: objects >= 256 B exploit row locality anyway.
        est = estimate_pattern(
            InterleavedWrites(total_b=1 << 16, object_b=256, num_sources=63, permutable=False),
            GEO,
            TIMING,
        )
        assert est.activations == (1 << 16) // 256

    def test_permutability_saving_factor(self):
        # 16 B objects in 256 B rows: permutability cuts activations ~14x.
        kwargs = dict(total_b=1 << 20, object_b=16, num_sources=63)
        addr = estimate_pattern(InterleavedWrites(permutable=False, **kwargs), GEO, TIMING)
        perm = estimate_pattern(InterleavedWrites(permutable=True, **kwargs), GEO, TIMING)
        assert addr.activations / perm.activations > 10

    def test_rejects_unknown_pattern(self):
        with pytest.raises(TypeError):
            estimate_pattern(object(), GEO, TIMING)


class TestEventVsAnalyticShuffle:
    """Replay shuffle-like traces on the event model and check the
    analytic interleaved-write estimator's activation counts."""

    def _trace(self, num_sources, objects_per_source, permutable):
        object_b = 16
        total = num_sources * objects_per_source
        if permutable:
            addrs = [i * object_b for i in range(total)]
        else:
            addrs = []
            for i in range(total):
                src = i % num_sources
                idx = i // num_sources
                addrs.append((src * objects_per_source + idx) * object_b)
        return [
            VaultRequest(i * 2.0, addr=a, size_b=object_b, is_write=True)
            for i, a in enumerate(addrs)
        ]

    @pytest.mark.parametrize("num_sources", [4, 16, 63])
    def test_activation_counts_bracket_event_model(self, num_sources):
        objects_per_source = 64
        total_b = num_sources * objects_per_source * 16
        for permutable in (True, False):
            vault = VaultMemory(GEO, TIMING)
            vault.run_trace(self._trace(num_sources, objects_per_source, permutable))
            est = estimate_pattern(
                InterleavedWrites(
                    total_b=total_b, object_b=16, num_sources=num_sources,
                    permutable=permutable,
                ),
                GEO,
                TIMING,
            )
            event = vault.stats.activations
            # Analytic estimate within 2x of the event model (the event
            # model's FR-FCFS recovers slightly more locality).
            assert est.activations <= event * 2 + 8
            assert est.activations >= event / 2 - 8

    def test_permutable_strictly_fewer_activations(self):
        num_sources, per_src = 32, 64
        v_perm = VaultMemory(GEO, TIMING)
        v_perm.run_trace(self._trace(num_sources, per_src, True))
        v_addr = VaultMemory(GEO, TIMING)
        v_addr.run_trace(self._trace(num_sources, per_src, False))
        assert v_perm.stats.activations * 4 < v_addr.stats.activations

    def test_permutable_finishes_faster(self):
        num_sources, per_src = 32, 64
        v_perm = VaultMemory(GEO, TIMING)
        t_perm = v_perm.run_trace(self._trace(num_sources, per_src, True))
        v_addr = VaultMemory(GEO, TIMING)
        t_addr = v_addr.run_trace(self._trace(num_sources, per_src, False))
        assert t_perm < t_addr
