"""Tests for repro.config: Table 3/4 parameters and system presets."""

import pytest

from repro.config import (
    CoreConfig,
    DramTiming,
    EnergyConfig,
    HmcGeometry,
    InterconnectConfig,
    SYSTEM_PRESETS,
    cortex_a35_mondrian,
    cortex_a57_cpu,
    default_energy_config,
    get_preset,
    krait400_nmp,
    preset_names,
)
from repro.config.system import (
    PARTITION_ADDRESSED,
    PARTITION_PERMUTABLE,
    PROBE_HASH,
    PROBE_SORT,
    TOPOLOGY_FULL,
    TOPOLOGY_STAR,
)


class TestDramTiming:
    def test_table3_defaults(self):
        t = DramTiming()
        assert t.t_ck_ns == 1.6
        assert t.t_ras_ns == 22.4
        assert t.t_rcd_ns == 11.2
        assert t.t_cas_ns == 11.2
        assert t.t_wr_ns == 14.4
        assert t.t_rp_ns == 11.2

    def test_derived_latencies(self):
        t = DramTiming()
        assert t.row_hit_latency_ns == pytest.approx(11.2)
        assert t.row_miss_latency_ns == pytest.approx(11.2 + 11.2 + 11.2)
        assert t.row_cycle_ns == pytest.approx(22.4 + 11.2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DramTiming(t_ras_ns=0)
        with pytest.raises(ValueError):
            DramTiming(t_cas_ns=-1)


class TestHmcGeometry:
    def test_paper_machine(self):
        g = HmcGeometry()
        assert g.total_vaults == 64
        assert g.total_capacity_b == 32 * 1024**3
        assert g.row_size_b == 256
        assert g.banks_per_vault == 8
        assert g.vault_peak_bw_gbps == 8.0

    def test_row_counts(self):
        g = HmcGeometry()
        assert g.rows_per_vault == 512 * 1024 * 1024 // 256
        assert g.rows_per_bank * g.banks_per_vault == g.rows_per_vault

    def test_stack_capacity(self):
        g = HmcGeometry()
        assert g.stack_capacity_b == 8 * 1024**3

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            HmcGeometry(num_stacks=0)
        with pytest.raises(ValueError):
            HmcGeometry(row_size_b=-256)
        with pytest.raises(ValueError):
            HmcGeometry(vault_capacity_b=1000, row_size_b=256)
        with pytest.raises(ValueError):
            HmcGeometry(min_access_b=64, max_access_b=8)


class TestCoreConfigs:
    def test_a57(self):
        c = cortex_a57_cpu()
        assert c.frequency_hz == 2e9
        assert c.rob_entries == 128
        assert c.out_of_order
        assert c.peak_power_w == 2.1
        assert c.cycle_time_ns == pytest.approx(0.5)

    def test_krait(self):
        c = krait400_nmp()
        assert c.rob_entries == 48
        assert c.peak_power_w == pytest.approx(0.312)

    def test_mondrian_core(self):
        c = cortex_a35_mondrian()
        assert not c.out_of_order
        assert c.simd_width_bits == 1024
        assert c.simd_lanes_64b == 16
        assert c.has_stream_buffers
        assert c.num_stream_buffers == 8
        assert c.stream_buffer_b == 384
        assert c.peak_power_w == pytest.approx(0.180)

    def test_mondrian_simd_width_ablation(self):
        c = cortex_a35_mondrian(simd_width_bits=128)
        assert c.simd_lanes_64b == 2

    def test_a57_mlp_matches_paper_estimate(self):
        # Section 3.2: ~20 outstanding accesses for a 128-entry ROB.
        c = cortex_a57_cpu()
        assert c.max_outstanding_mem(6.0) == pytest.approx(128 / 6, abs=1.5)

    def test_in_order_mlp_is_stream_buffers(self):
        assert cortex_a35_mondrian().max_outstanding_mem() == 8.0

    def test_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            CoreConfig(
                name="x", frequency_hz=0, issue_width=1, out_of_order=False,
                rob_entries=0, mshrs=1, simd_width_bits=0, peak_power_w=1.0,
            )
        with pytest.raises(ValueError):
            CoreConfig(
                name="x", frequency_hz=1e9, issue_width=1, out_of_order=True,
                rob_entries=0, mshrs=1, simd_width_bits=0, peak_power_w=1.0,
            )


class TestEnergyConfig:
    def test_table4_constants(self):
        e = default_energy_config()
        assert e.dram_activation_j == pytest.approx(0.65e-9)
        assert e.dram_access_j_per_bit == pytest.approx(2e-12)
        assert e.hmc_background_w_per_cube == pytest.approx(0.980)
        assert e.serdes_idle_j_per_bit == pytest.approx(1e-12)
        assert e.serdes_busy_j_per_bit == pytest.approx(3e-12)
        assert e.llc_access_j == pytest.approx(0.09e-9)

    def test_access_energy_scales_with_bits(self):
        e = default_energy_config()
        assert e.dram_access_j(64) == pytest.approx(64 * 8 * 2e-12)
        assert e.dram_access_j(0) == 0.0

    def test_activation_fraction_shape(self):
        # Section 3.1: ~14% for a full HMC row, ~80% for 8 B.
        e = default_energy_config()
        assert 0.10 < e.activation_fraction(256, 256) < 0.20
        assert 0.75 < e.activation_fraction(8, 256) < 0.90

    def test_activation_fraction_grows_with_row_size(self):
        e = default_energy_config()
        hmc = e.activation_fraction(64, 256)
        hbm = e.activation_fraction(64, 2048)
        wideio = e.activation_fraction(64, 4096)
        assert hmc < hbm < wideio

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyConfig(dram_activation_j=-1)
        with pytest.raises(ValueError):
            default_energy_config().dram_access_j(-1)


class TestInterconnectConfig:
    def test_table3_values(self):
        i = InterconnectConfig()
        assert i.noc_link_b == 16
        assert i.noc_cycles_per_hop == 3
        assert i.serdes_bw_bps_per_dir == pytest.approx(20e9)  # 160 Gb/s

    def test_serialization(self):
        i = InterconnectConfig()
        assert i.noc_serialization_ns(16) == pytest.approx(1.0)
        assert i.noc_serialization_ns(17) == pytest.approx(2.0)
        assert i.noc_serialization_ns(0) == 0.0

    def test_hop_latency(self):
        assert InterconnectConfig().noc_hop_latency_ns() == pytest.approx(3.0)


class TestSystemPresets:
    def test_all_presets_build(self):
        for name in preset_names():
            cfg = get_preset(name)
            assert cfg.name == name

    def test_paper_configurations(self):
        cpu = get_preset("cpu")
        assert cpu.num_cores == 16
        assert cpu.topology == TOPOLOGY_STAR
        assert cpu.has_cache_hierarchy
        assert cpu.llc_b == 4 * 1024 * 1024
        assert cpu.probe_algorithm == PROBE_HASH

        nmp = get_preset("nmp-rand")
        assert nmp.num_cores == 64
        assert nmp.topology == TOPOLOGY_FULL
        assert nmp.partition_scheme == PARTITION_ADDRESSED

        perm = get_preset("nmp-perm")
        assert perm.partition_scheme == PARTITION_PERMUTABLE
        assert perm.uses_permutability

        mon = get_preset("mondrian")
        assert mon.kind == "mondrian"
        assert mon.probe_algorithm == PROBE_SORT
        assert mon.uses_permutability
        assert not mon.has_cache_hierarchy

        mon_np = get_preset("mondrian-noperm")
        assert not mon_np.uses_permutability

    def test_near_memory_flag(self):
        assert not get_preset("cpu").is_near_memory
        assert get_preset("nmp-seq").is_near_memory
        assert get_preset("mondrian").is_near_memory

    def test_unknown_preset_raises_with_choices(self):
        with pytest.raises(KeyError, match="mondrian"):
            get_preset("nope")

    def test_with_overrides(self):
        cfg = get_preset("mondrian").with_overrides(num_cores=32)
        assert cfg.num_cores == 32
        assert get_preset("mondrian").num_cores == 64  # original untouched

    def test_rejects_invalid_fields(self):
        with pytest.raises(ValueError):
            get_preset("cpu").with_overrides(kind="gpu")
        with pytest.raises(ValueError):
            get_preset("cpu").with_overrides(num_cores=0)
        with pytest.raises(ValueError):
            get_preset("cpu").with_overrides(probe_algorithm="btree")
