"""benchmarks/compare.py: non-overlapping trajectory points must not
crash or silently intersect.

A PR that adds or removes benchmarks produces BENCH_*.json files whose
name sets differ; the diff must name those benches in explicit
new/removed sections, keep the geomean well-defined (zero means and
empty intersections included), and still gate regressions on the shared
set only.
"""

import json
from pathlib import Path

import pytest

from benchmarks.compare import compare, find_regressions, load_means


def write_bench(tmp_path: Path, name: str, means: dict) -> Path:
    payload = {
        "benchmarks": [
            {"name": bench, "stats": {"mean": mean}}
            for bench, mean in means.items()
        ]
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestCompare:
    def test_named_sections_for_unmatched_benches(self, tmp_path):
        new = write_bench(tmp_path, "BENCH_2.json",
                          {"shared": 1.0, "added": 0.5})
        old = write_bench(tmp_path, "BENCH_1.json",
                          {"shared": 2.0, "dropped": 0.25})
        text = compare(new, old)
        assert "new benchmarks (1, only in BENCH_2.json" in text
        assert "  added" in text
        assert "removed benchmarks (1, only in BENCH_1.json" in text
        assert "  dropped" in text
        assert "geomean speedup over 1 shared benchmarks: 2.00x" in text

    def test_disjoint_files_do_not_crash(self, tmp_path):
        new = write_bench(tmp_path, "BENCH_2.json", {"a": 1.0})
        old = write_bench(tmp_path, "BENCH_1.json", {"b": 1.0})
        text = compare(new, old)
        assert "no shared benchmarks" in text
        assert "geomean" not in text

    def test_zero_mean_excluded_from_geomean(self, tmp_path):
        new = write_bench(tmp_path, "BENCH_2.json", {"ok": 1.0, "zero": 0.0})
        old = write_bench(tmp_path, "BENCH_1.json", {"ok": 4.0, "zero": 1.0})
        text = compare(new, old)  # must not raise ZeroDivisionError
        assert "inf" in text.lower()
        assert "(1 zero-mean excluded)" in text
        assert "geomean speedup over 1 shared benchmarks" in text

    def test_all_shared_all_zero_old(self, tmp_path):
        new = write_bench(tmp_path, "BENCH_2.json", {"a": 1.0})
        old = write_bench(tmp_path, "BENCH_1.json", {"a": 0.0})
        text = compare(new, old)
        assert "geomean" not in text

    def test_load_means(self, tmp_path):
        path = write_bench(tmp_path, "b.json", {"x": 0.125})
        assert load_means(path) == {"x": 0.125}


class TestRegressionGate:
    def test_gate_only_sees_shared(self):
        new = {"shared": 3.0, "added": 100.0}
        old = {"shared": 1.0, "dropped": 0.001}
        found = find_regressions(new, old, max_regression_pct=10.0)
        assert [name for name, *_ in found] == ["shared"]
        assert found[0][3] == pytest.approx(200.0)

    def test_zero_old_mean_skipped(self):
        assert find_regressions({"a": 1.0}, {"a": 0.0}, 10.0) == []
