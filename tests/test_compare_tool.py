"""benchmarks/compare.py: non-overlapping trajectory points must not
crash or silently intersect.

A PR that adds or removes benchmarks produces BENCH_*.json files whose
name sets differ; the diff must name those benches in explicit
new/removed sections, keep the geomean well-defined (zero means and
empty intersections included), and still gate regressions on the shared
set only.
"""

import json
from pathlib import Path

import pytest

from benchmarks.compare import (
    compare,
    comparison_document,
    find_regressions,
    load_means,
    load_percentiles,
)


def write_bench(tmp_path: Path, name: str, means: dict) -> Path:
    payload = {
        "benchmarks": [
            {"name": bench, "stats": {"mean": mean}}
            for bench, mean in means.items()
        ]
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestCompare:
    def test_named_sections_for_unmatched_benches(self, tmp_path):
        new = write_bench(tmp_path, "BENCH_2.json",
                          {"shared": 1.0, "added": 0.5})
        old = write_bench(tmp_path, "BENCH_1.json",
                          {"shared": 2.0, "dropped": 0.25})
        text = compare(new, old)
        assert "new benchmarks (1, only in BENCH_2.json" in text
        assert "  added" in text
        assert "removed benchmarks (1, only in BENCH_1.json" in text
        assert "  dropped" in text
        assert "geomean speedup over 1 shared benchmarks: 2.00x" in text

    def test_disjoint_files_do_not_crash(self, tmp_path):
        new = write_bench(tmp_path, "BENCH_2.json", {"a": 1.0})
        old = write_bench(tmp_path, "BENCH_1.json", {"b": 1.0})
        text = compare(new, old)
        assert "no shared benchmarks" in text
        assert "geomean" not in text

    def test_zero_mean_excluded_from_geomean(self, tmp_path):
        new = write_bench(tmp_path, "BENCH_2.json", {"ok": 1.0, "zero": 0.0})
        old = write_bench(tmp_path, "BENCH_1.json", {"ok": 4.0, "zero": 1.0})
        text = compare(new, old)  # must not raise ZeroDivisionError
        assert "inf" in text.lower()
        assert "(1 zero-mean excluded)" in text
        assert "geomean speedup over 1 shared benchmarks" in text

    def test_all_shared_all_zero_old(self, tmp_path):
        new = write_bench(tmp_path, "BENCH_2.json", {"a": 1.0})
        old = write_bench(tmp_path, "BENCH_1.json", {"a": 0.0})
        text = compare(new, old)
        assert "geomean" not in text

    def test_load_means(self, tmp_path):
        path = write_bench(tmp_path, "b.json", {"x": 0.125})
        assert load_means(path) == {"x": 0.125}


class TestPercentiles:
    """Latency percentiles (the load-test phases) ride the comparison."""

    def write_load_bench(self, tmp_path, name, mean, p50, p95, p99):
        payload = {
            "benchmarks": [
                {"name": "load_test_steady",
                 "stats": {"mean": mean, "p50": p50, "p95": p95, "p99": p99}},
                {"name": "plain_bench", "stats": {"mean": 1.0}},
            ]
        }
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_load_percentiles_skips_plain_benches(self, tmp_path):
        path = self.write_load_bench(tmp_path, "b.json", 0.01, 0.01, 0.02, 0.03)
        loaded = load_percentiles(path)
        assert loaded == {
            "load_test_steady": {"p50": 0.01, "p95": 0.02, "p99": 0.03}
        }
        assert "plain_bench" not in loaded

    def test_tail_blowup_fails_the_gate_by_name(self):
        new = {"load_test_steady": 0.01}
        old = {"load_test_steady": 0.01}
        new_p = {"load_test_steady": {"p50": 0.01, "p95": 0.02, "p99": 0.09}}
        old_p = {"load_test_steady": {"p50": 0.01, "p95": 0.02, "p99": 0.03}}
        found = find_regressions(new, old, 10.0,
                                 new_percentiles=new_p, old_percentiles=old_p)
        assert [name for name, *_ in found] == ["load_test_steady:p99"]
        assert found[0][3] == pytest.approx(200.0)

    def test_percentiles_need_both_sides(self):
        # Old files recorded before the load test carry no percentiles;
        # the gate must not invent a baseline for them.
        new = {"load_test_steady": 0.01}
        old = {"load_test_steady": 0.01}
        new_p = {"load_test_steady": {"p99": 9.9}}
        assert find_regressions(new, old, 10.0, new_percentiles=new_p,
                                old_percentiles={}) == []

    def test_compare_prints_percentile_sublines(self, tmp_path):
        new = self.write_load_bench(tmp_path, "BENCH_2.json",
                                    0.01, 0.01, 0.02, 0.03)
        old = self.write_load_bench(tmp_path, "BENCH_1.json",
                                    0.02, 0.02, 0.04, 0.06)
        text = compare(new, old,
                       new_percentiles=load_percentiles(new),
                       old_percentiles=load_percentiles(old))
        assert "load_test_steady:p99" in text
        assert "load_test_steady:p50" in text

    def test_document_carries_percentiles_through(self, tmp_path):
        new = self.write_load_bench(tmp_path, "BENCH_2.json",
                                    0.01, 0.01, 0.02, 0.09)
        old = self.write_load_bench(tmp_path, "BENCH_1.json",
                                    0.01, 0.01, 0.02, 0.03)
        doc = comparison_document(
            new, old, load_means(new), load_means(old),
            max_regression_pct=10.0,
            new_percentiles=load_percentiles(new),
            old_percentiles=load_percentiles(old),
        )
        shared = doc["shared"]["load_test_steady"]
        assert shared["percentiles"]["old"]["p99"] == 0.03
        assert shared["percentiles"]["new"]["p99"] == 0.09
        assert "percentiles" not in doc["shared"]["plain_bench"]
        assert not doc["gate_ok"]
        assert any(r["name"] == "load_test_steady:p99"
                   for r in doc["regressions"])

    def test_new_only_percentiles_listed(self, tmp_path):
        new = self.write_load_bench(tmp_path, "BENCH_2.json",
                                    0.01, 0.01, 0.02, 0.03)
        old = write_bench(tmp_path, "BENCH_1.json", {"plain_bench": 1.0})
        doc = comparison_document(new, old, load_means(new), load_means(old),
                                  new_percentiles=load_percentiles(new),
                                  old_percentiles=load_percentiles(old))
        assert "load_test_steady" in doc["new_percentiles"]


class TestRegressionGate:
    def test_gate_only_sees_shared(self):
        new = {"shared": 3.0, "added": 100.0}
        old = {"shared": 1.0, "dropped": 0.001}
        found = find_regressions(new, old, max_regression_pct=10.0)
        assert [name for name, *_ in found] == ["shared"]
        assert found[0][3] == pytest.approx(200.0)

    def test_zero_old_mean_skipped(self):
        assert find_regressions({"a": 1.0}, {"a": 0.0}, 10.0) == []
