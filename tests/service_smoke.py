"""End-to-end smoke test of the evaluation service (``make service-smoke``).

Starts the daemon as a real subprocess on an ephemeral port with a
fresh store, submits the committed sweep-smoke 2x2 grid twice through
the ``python -m repro.service submit`` CLI, and asserts:

- both exports match ``tests/data/sweep_smoke_golden.json`` byte for
  byte (the daemon serves the same records as in-process ``Sweep.run``);
- the second pass is **100% store hits** (zero simulations executed);
- the daemon survives both submissions and reports coherent stats.

Run directly: ``PYTHONPATH=src python tests/service_smoke.py``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SPEC = ROOT / "tests" / "data" / "sweep_smoke.json"
GOLDEN = ROOT / "tests" / "data" / "sweep_smoke_golden.json"

ENV = dict(os.environ, PYTHONPATH=str(ROOT / "src"))


def submit(port: int) -> bytes:
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.service", "submit",
            "--port", str(port), "--sweep", str(SPEC), "--json", "-",
        ],
        env=ENV, cwd=ROOT, capture_output=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def stats(port: int) -> dict:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.service", "stats", "--port", str(port)],
        env=ENV, cwd=ROOT, capture_output=True, timeout=60,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return json.loads(proc.stdout)


def main() -> None:
    grid_size = 4  # the committed 2x2 sweep-smoke grid
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as store:
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service", "serve",
                "--port", "0", "--store", store,
            ],
            env=ENV, cwd=ROOT, stdout=subprocess.PIPE, text=True,
        )
        try:
            banner = daemon.stdout.readline()
            match = re.search(r"serving on ([\w.]+):(\d+)", banner)
            assert match, f"daemon did not announce its port: {banner!r}"
            port = int(match.group(2))

            golden = GOLDEN.read_bytes()
            first = submit(port)
            assert first == golden, "first submission diverges from the golden file"
            second = submit(port)
            assert second == golden, "second submission diverges from the golden file"

            report = stats(port)
            scheduler = report["scheduler"]
            assert scheduler["submitted"] == 2 * grid_size, scheduler
            assert scheduler["executed"] == grid_size, (
                f"expected only the cold pass to simulate, got {scheduler}"
            )
            assert scheduler["store_hits"] == grid_size, (
                f"expected the warm pass to be 100% store hits, got {scheduler}"
            )
            assert report["store"]["puts"] == grid_size, report["store"]

            # Ask for a clean shutdown through the wire protocol.
            sys.path.insert(0, str(ROOT / "src"))
            from repro.service.client import ServiceClient

            with ServiceClient(port=port) as client:
                client.shutdown()
            assert daemon.wait(timeout=30) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
    print(
        "service-smoke OK: daemon round-trip matches the golden file and "
        "the second pass was 100% store hits."
    )


if __name__ == "__main__":
    main()
