"""Tests for skewed workloads and two-round partitioning (the paper's
section 5.4 future work, implemented here)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics.skew import (
    make_skewed_groupby_workload,
    make_skewed_sort_workload,
    partition_imbalance,
    zipf_keys,
)
from repro.operators.base import OperatorVariant
from repro.operators.skew import (
    PartitionOverflowError,
    check_overflow,
    plan_rebalance,
    run_partitioning_skew_aware,
)

P = 16
VARIANT = OperatorVariant(
    radix_bits=8, probe_algorithm="sort", permutable=True, simd=True,
    num_partitions=P,
)


class TestSkewedWorkloads:
    def test_zipf_concentrates_mass(self):
        rng = np.random.default_rng(1)
        keys = zipf_keys(rng, 10_000, 1000, alpha=1.3, key_space_bits=40)
        _, counts = np.unique(keys, return_counts=True)
        top = np.sort(counts)[::-1]
        assert top[0] > len(keys) * 0.05  # hottest key holds > 5%

    def test_zipf_alpha_zero_is_uniform_ish(self):
        rng = np.random.default_rng(2)
        keys = zipf_keys(rng, 10_000, 100, alpha=0.0, key_space_bits=40)
        _, counts = np.unique(keys, return_counts=True)
        assert counts.max() < len(keys) * 0.05

    def test_skewed_groupby_workload(self):
        w = make_skewed_groupby_workload(5000, P, alpha=1.2, seed=3)
        assert w.total_tuples == 5000
        assert len(w.partitions) == P

    def test_skewed_sort_workload_clusters_values(self):
        w = make_skewed_sort_workload(5000, P, seed=4)
        keys = np.concatenate([p.keys for p in w.partitions])
        # Bin the key space into 64 equal ranges: the hot band should
        # capture most of the mass in one bin.
        bins = (keys >> np.uint64(w.key_space_bits - 6)).astype(np.int64)
        counts = np.bincount(bins, minlength=64)
        # The hot band may straddle a bin boundary; the top two bins
        # together must hold most of the mass.
        top2 = np.sort(counts)[-2:].sum()
        assert top2 > 0.6 * len(keys)

    def test_imbalance_metric(self):
        assert partition_imbalance([10, 10, 10]) == pytest.approx(1.0)
        assert partition_imbalance([30, 0, 0]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            partition_imbalance([])

    def test_rejects_bad_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            zipf_keys(rng, 0, 10, 1.0, 40)
        with pytest.raises(ValueError):
            zipf_keys(rng, 10, 10, -1.0, 40)


class TestOverflowDetection:
    def test_overflow_raises_with_details(self):
        inbound = np.array([10, 10, 100, 10])
        with pytest.raises(PartitionOverflowError) as err:
            check_overflow(inbound, capacity_tuples=50)
        assert err.value.vault == 2
        assert err.value.inbound_b == 100 * 16
        assert err.value.capacity_b == 50 * 16

    def test_no_overflow_passes(self):
        check_overflow(np.array([10, 10, 10]), capacity_tuples=50)


class TestRebalancePlan:
    def test_balances_hot_buckets(self):
        hist = np.zeros(64, dtype=np.int64)
        hist[:4] = 1000  # four hot buckets
        hist[4:] = 10
        plan = plan_rebalance(hist, num_vaults=8, capacity_tuples=800)
        assert plan.imbalance_after < plan.imbalance_before
        # Hot buckets exceed one vault's budget -> must split.
        assert len(plan.split_buckets) == 4

    def test_no_split_when_buckets_fit(self):
        hist = np.full(64, 10, dtype=np.int64)
        plan = plan_rebalance(hist, num_vaults=8, capacity_tuples=1000)
        assert plan.split_buckets == []
        assert all(len(s) == 1 for s in plan.assignment.values())

    def test_rejects_impossible_capacity(self):
        hist = np.full(4, 100, dtype=np.int64)
        with pytest.raises(ValueError):
            plan_rebalance(hist, num_vaults=2, capacity_tuples=10)

    def test_all_buckets_assigned(self):
        hist = np.arange(32, dtype=np.int64)
        plan = plan_rebalance(hist, num_vaults=4, capacity_tuples=1000)
        assert set(plan.assignment) == set(range(32))


class TestTwoRoundPartitioning:
    def test_uniform_data_single_round(self):
        from repro.analytics.workload import make_groupby_workload
        w = make_groupby_workload(4000, P, seed=5)
        outcome, plan = run_partitioning_skew_aware(
            w.partitions, VARIANT, w.key_space_bits
        )
        names = [p.name for p in outcome.phases]
        assert "rebalance" not in names  # round one fit

    def test_skewed_data_triggers_second_round(self):
        w = make_skewed_groupby_workload(4000, P, alpha=1.5, num_distinct=60, seed=6)
        outcome, plan = run_partitioning_skew_aware(
            w.partitions, VARIANT, w.key_space_bits, capacity_factor=1.5
        )
        names = [p.name for p in outcome.phases]
        assert "rebalance" in names
        assert plan.imbalance_after < plan.imbalance_before

    def test_second_round_respects_capacity(self):
        w = make_skewed_groupby_workload(4000, P, alpha=1.5, num_distinct=60, seed=7)
        capacity_factor = 1.5
        outcome, _ = run_partitioning_skew_aware(
            w.partitions, VARIANT, w.key_space_bits, capacity_factor=capacity_factor
        )
        n = w.total_tuples
        cap = int(np.ceil(n / P * capacity_factor))
        for part in outcome.partitions:
            assert len(part) <= cap

    def test_no_tuples_lost(self):
        w = make_skewed_groupby_workload(3000, P, alpha=1.4, num_distinct=50, seed=8)
        outcome, _ = run_partitioning_skew_aware(
            w.partitions, VARIANT, w.key_space_bits
        )
        total = sum(len(p) for p in outcome.partitions)
        assert total == w.total_tuples
        all_in = np.sort(np.concatenate([p.keys for p in w.partitions]))
        all_out = np.sort(np.concatenate([p.keys for p in outcome.partitions]))
        assert np.array_equal(all_in, all_out)

    def test_rebalance_cost_charged(self):
        w = make_skewed_groupby_workload(4000, P, alpha=1.5, num_distinct=60, seed=9)
        outcome, _ = run_partitioning_skew_aware(
            w.partitions, VARIANT, w.key_space_bits, model_scale=100.0
        )
        rebalance = [p for p in outcome.phases if p.name == "rebalance"]
        assert rebalance and rebalance[0].instructions > 0

    def test_rejects_bad_capacity_factor(self):
        from repro.analytics.workload import make_groupby_workload
        w = make_groupby_workload(100, P, seed=10)
        with pytest.raises(ValueError):
            run_partitioning_skew_aware(
                w.partitions, VARIANT, w.key_space_bits, capacity_factor=0.5
            )

    @given(st.floats(1.1, 1.9), st.integers(0, 5))
    @settings(max_examples=10, deadline=None)
    def test_property_balanced_after_retry(self, alpha, seed):
        w = make_skewed_groupby_workload(
            2000, P, alpha=alpha, num_distinct=80, seed=seed
        )
        outcome, _ = run_partitioning_skew_aware(
            w.partitions, VARIANT, w.key_space_bits, capacity_factor=1.5
        )
        sizes = [len(p) for p in outcome.partitions]
        # Bounded by the (ceiling-rounded) per-vault capacity.
        cap = np.ceil(2000 / P * 1.5)
        assert partition_imbalance(sizes) <= cap / (2000 / P) + 1e-9
