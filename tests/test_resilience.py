"""Tests for the service resilience layer: retry policy and circuit
breaker, the write-ahead intent journal and crash-safe store recovery,
the worker loop's chaos hooks, the supervised worker fleet (restarts,
requeue, degradation, heartbeats), the resilient client (retries,
reconnect-resend, deadlines, local degradation) and the scheduler/daemon
wiring on top."""

import json
import os
import signal
import socket
import threading
import time
from io import StringIO
from pathlib import Path

import pytest

from repro.api import Scenario
from repro.experiments import common
from repro.service import (
    BatchScheduler,
    CircuitBreaker,
    DeadlineExceeded,
    EvaluationDaemon,
    IntentJournal,
    ResultStore,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    WorkerFleet,
    WorkerTaskError,
    serve_background,
)
from repro.service.client import IDEMPOTENT_VERBS, ServiceDegradedWarning
from repro.service.resilience import worker as worker_mod
from repro.service.resilience.journal import (
    atomic_write_text,
    fsync_dir,
    fsync_path,
)
from repro.service.store import FSYNC_ENV, digest_payload

#: Small, fast scenario parameters shared across the module.
FAST = dict(model_scale=50.0, num_partitions=8)

#: A zero-wait backoff so fleet tests never sleep between respawns.
NO_BACKOFF = RetryPolicy(retries=0, base_delay=0.0, max_delay=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def isolated_store_state(monkeypatch):
    """Every test starts without a persistent tier and with cold caches."""
    monkeypatch.delenv(common.STORE_ENV, raising=False)
    monkeypatch.delenv(common.STORE_MAX_BYTES_ENV, raising=False)
    monkeypatch.delenv("REPRO_WORKER_CHAOS", raising=False)
    common.configure_store(None)
    common.clear_caches()
    yield
    common.configure_store(None)
    common.clear_caches()
    common.set_cache_enabled(True)


def chaos_env(spec: str) -> dict:
    """A worker environment with a chaos schedule armed."""
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    env["REPRO_WORKER_CHAOS"] = spec
    return env


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(retries=5, base_delay=0.1, max_delay=0.5,
                             multiplier=2.0, jitter=0.0)
        assert [policy.delay(a) for a in range(4)] == [0.1, 0.2, 0.4, 0.5]
        assert list(policy.delays()) == [
            policy.delay(a) for a in range(policy.retries)
        ]

    def test_jitter_needs_an_rng(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5)

        class FixedRng:
            def random(self):
                return 1.0

        assert policy.delay(0) == 1.0  # no rng: deterministic
        assert policy.delay(0, rng=FixedRng()) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=2.0, max_delay=1.0)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_half_open_probe_lifecycle(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 11.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # the single probe goes through
        assert not breaker.allow()   # a second caller is held back
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_with_fresh_timer(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now = 11.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        clock.now = 20.0
        assert not breaker.allow()  # timer restarted at t=11
        clock.now = 21.5
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)


# ---------------------------------------------------------------------------
# Journal + crash-safe atomic writes
# ---------------------------------------------------------------------------


class TestJournal:
    def test_atomic_write_replaces_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_text(target, '{"v": 1}')
        atomic_write_text(target, '{"v": 2}', fsync=False)
        assert json.loads(target.read_text()) == {"v": 2}
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_fsync_dir_is_a_noop_on_unopenable_paths(self, tmp_path):
        fsync_dir(tmp_path / "missing")  # must not raise

    def test_fsync_path_flushes_an_existing_file(self, tmp_path):
        target = tmp_path / "doc.json"
        target.write_text("{}")
        fsync_path(target)  # durability barrier on a real fd

    def test_atomic_write_cleans_its_temp_on_failure(self, tmp_path):
        target = tmp_path / "collision"
        target.mkdir()  # os.replace onto a directory must fail
        with pytest.raises(OSError):
            atomic_write_text(target, "{}")
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_journal_directory_property(self, tmp_path):
        assert IntentJournal(tmp_path).directory == tmp_path / "journal"

    def test_intent_is_retired_on_success(self, tmp_path):
        journal = IntentJournal(tmp_path)
        final = tmp_path / "objects" / "aa" / "aabb.json"
        tmp = final.parent / ".aabb.tmp"
        with journal.intent("aabb", final=final, tmp=tmp):
            assert len(journal.pending()) == 1
        assert journal.pending() == []

    def _plant(self, tmp_path, digest, record=None, tmp_text=None,
               final_text=None):
        journal_dir = tmp_path / "journal"
        journal_dir.mkdir(exist_ok=True)
        final = tmp_path / "objects" / digest[:2] / f"{digest}.json"
        tmp = final.parent / f".{digest}.1.tmp"
        final.parent.mkdir(parents=True, exist_ok=True)
        if tmp_text is not None:
            tmp.write_text(tmp_text)
        if final_text is not None:
            final.write_text(final_text)
        if record is None:
            record = json.dumps({
                "digest": digest,
                "final": os.path.relpath(final, tmp_path),
                "tmp": os.path.relpath(tmp, tmp_path),
            })
        (journal_dir / f"{digest}.1.json").write_text(record)
        return final, tmp

    def test_recover_classifies_every_intent_shape(self, tmp_path):
        quarantined = []
        journal = IntentJournal(tmp_path)
        # Complete temp, missing final: rolled forward.
        fwd_final, fwd_tmp = self._plant(
            tmp_path, "aa" + "0" * 62, tmp_text='{"ok": 1}'
        )
        # Torn temp, missing final: discarded, debris removed.
        _, torn_tmp = self._plant(
            tmp_path, "bb" + "0" * 62, tmp_text='{"torn": '
        )
        # Valid final already in place: rolled forward (crash after rename).
        self._plant(tmp_path, "cc" + "0" * 62, final_text='{"done": 1}')
        # Final present but corrupt, complete tmp behind it: quarantined
        # and then rolled forward over the corrupt bytes.
        bad_final, _ = self._plant(
            tmp_path, "dd" + "0" * 62, tmp_text='{"good": 1}',
            final_text="corrupt{",
        )
        # The intent record itself is torn: discarded outright.
        self._plant(tmp_path, "ee" + "0" * 62, record='{"digest": ')

        def validate(path):
            try:
                json.loads(path.read_text())
                return True
            except ValueError:
                return False

        counts = journal.recover(validate=validate,
                                 quarantine=quarantined.append)
        assert counts == {"rolled_forward": 3, "discarded": 2,
                          "quarantined": 1}
        assert json.loads(fwd_final.read_text()) == {"ok": 1}
        assert not fwd_tmp.exists() and not torn_tmp.exists()
        assert quarantined == [bad_final]
        assert json.loads(bad_final.read_text()) == {"good": 1}
        assert journal.pending() == []

    def test_pending_without_a_journal_dir(self, tmp_path):
        assert IntentJournal(tmp_path / "nowhere").pending() == []


# ---------------------------------------------------------------------------
# Crash-safe store behaviour
# ---------------------------------------------------------------------------


def _first_digest(store: ResultStore) -> str:
    return next(iter(store.digests()))


class TestStoreCrashSafety:
    def _warm(self, root) -> ResultStore:
        store = ResultStore(root)
        common.configure_store(store)
        common.run_cached_result("cpu", "scan", 50.0, num_partitions=8)
        return store

    def test_put_leaves_no_journal_residue(self, tmp_path):
        store = self._warm(tmp_path)
        assert (tmp_path / "journal").is_dir()
        assert list((tmp_path / "journal").glob("*.json")) == []
        assert store.stats()["puts"] == 1

    def test_fsync_env_fast_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FSYNC_ENV, "0")
        assert ResultStore(tmp_path).fsync is False
        monkeypatch.delenv(FSYNC_ENV)
        assert ResultStore(tmp_path).fsync is True
        assert ResultStore(tmp_path, fsync=False).fsync is False

    def test_corrupt_entry_is_quarantined_not_served(self, tmp_path):
        store = self._warm(tmp_path)
        digest = _first_digest(store)
        path = tmp_path / "objects" / digest[:2] / f"{digest}.json"
        path.write_text("{torn")
        assert store.get(digest) is None
        assert store.stats()["quarantined"] == 1
        assert not store.contains(digest)
        assert list(store.quarantined()) == [f"{digest}.json"]
        # The corrupt bytes are preserved for post-mortems.
        assert (store.quarantine_dir / f"{digest}.json").read_text() == "{torn"

    def test_startup_recovery_rolls_forward_and_discards(self, tmp_path):
        self._warm(tmp_path)
        common.configure_store(None)
        digest = "ab" * 32
        final = tmp_path / "objects" / digest[:2] / f"{digest}.json"
        tmp = final.parent / f".{digest}.9.tmp"
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text('{"recovered": true}')
        journal = tmp_path / "journal"
        journal.mkdir(exist_ok=True)
        (journal / f"{digest}.9.json").write_text(json.dumps({
            "digest": digest,
            "final": os.path.relpath(final, tmp_path),
            "tmp": os.path.relpath(tmp, tmp_path),
        }))
        (journal / ("cd" * 32 + ".9.json")).write_text("{torn")

        reopened = ResultStore(tmp_path)
        stats = reopened.stats()
        assert stats["recovered_forward"] == 1
        assert stats["recovered_discarded"] == 1
        assert reopened.contains(digest)

    def test_verify_reports_full_accounting(self, tmp_path):
        store = self._warm(tmp_path)
        digest = _first_digest(store)
        (tmp_path / "objects" / digest[:2] / f"{digest}.json").write_text("{")
        debris = tmp_path / "objects" / digest[:2] / ".leftover.tmp"
        debris.write_text("junk")
        report = store.verify()
        assert report["checked"] == 1
        assert report["quarantined_now"] == 1
        assert report["debris_removed"] == 1
        assert report["entries"] == 0
        assert not debris.exists()


# ---------------------------------------------------------------------------
# The worker loop (in-process, injectable chaos)
# ---------------------------------------------------------------------------


def run_worker(lines, chaos=None, kill=None):
    """Drive the worker loop over scripted stdin; return response dicts."""
    out = StringIO()
    worker_mod.run(
        StringIO("".join(line + "\n" for line in lines)),
        out,
        chaos=chaos if chaos is not None else {},
        kill=kill if kill is not None else (lambda: None),
    )
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestWorkerLoop:
    def test_parse_chaos(self):
        assert worker_mod.parse_chaos(None) == {}
        assert worker_mod.parse_chaos("") == {}
        plan = worker_mod.parse_chaos("kill_after=2, mode=post")
        assert plan["kill_after"] == 2 and plan["mode"] == "post"
        plan = worker_mod.parse_chaos("stall_after=1,stall=0.5")
        assert plan["stall_after"] == 1 and plan["stall"] == 0.5
        assert plan["mode"] == "pre"  # default
        with pytest.raises(ValueError, match="mode"):
            worker_mod.parse_chaos("mode=sideways")
        with pytest.raises(ValueError, match="unknown chaos key"):
            worker_mod.parse_chaos("explode=yes")

    def test_ping_exit_and_unknown_verb(self):
        responses = run_worker([
            json.dumps({"verb": "ping", "id": "hb"}),
            json.dumps({"verb": "frobnicate", "id": "x"}),
            "",  # blank lines are skipped
            json.dumps({"verb": "exit", "id": "bye"}),
            json.dumps({"verb": "ping"}),  # never reached: exit returned
        ])
        assert responses[0]["pong"] and responses[0]["pid"] == os.getpid()
        assert not responses[1]["ok"] and "unknown verb" in responses[1]["error"]
        assert responses[2] == {"id": "bye", "ok": True, "bye": True}
        assert len(responses) == 3

    def test_malformed_line_is_answered_not_fatal(self):
        responses = run_worker(["{not json", json.dumps({"verb": "ping"})])
        assert not responses[0]["ok"]
        assert responses[1]["pong"]  # the loop survived

    def test_evaluate_returns_records_and_store_delta(self, tmp_path):
        scenario = Scenario("cpu", "scan", **FAST)
        responses = run_worker([json.dumps({
            "verb": "evaluate", "id": "t0",
            "scenario": scenario.to_dict(),
            "store": str(tmp_path), "cache": True,
        })])
        assert responses[0]["ok"]
        assert responses[0]["records"] == scenario.records()
        assert responses[0]["store_delta"]["puts"] == 1

    def test_evaluate_failure_is_a_task_error(self):
        responses = run_worker([json.dumps({
            "verb": "evaluate", "id": "t0",
            "scenario": {"system": "cpu", "operator": "nope"},
            "store": None, "cache": True,
        })])
        assert not responses[0]["ok"]
        assert "nope" in responses[0]["error"]

    def test_chaos_kill_pre_dies_without_evaluating(self, tmp_path):
        kills = []
        responses = run_worker(
            [json.dumps({
                "verb": "evaluate", "id": "t0",
                "scenario": Scenario("cpu", "scan", **FAST).to_dict(),
                "store": str(tmp_path), "cache": True,
            })],
            chaos={"kill_after": 0, "mode": "pre", "stall": 5.0},
            kill=lambda: kills.append(True),
        )
        assert kills == [True]
        assert responses[0]["error"] == "chaos: killed"
        assert list((tmp_path / "objects").glob("*/*.json")) == [] \
            if (tmp_path / "objects").is_dir() else True

    def test_chaos_kill_post_lands_the_store_write_first(self, tmp_path):
        kills = []
        responses = run_worker(
            [json.dumps({
                "verb": "evaluate", "id": "t0",
                "scenario": Scenario("cpu", "scan", **FAST).to_dict(),
                "store": str(tmp_path), "cache": True,
            })],
            chaos={"kill_after": 0, "mode": "post", "stall": 5.0},
            kill=lambda: kills.append(True),
        )
        assert kills == [True]
        assert responses[0]["error"] == "chaos: killed"
        # The evaluated result reached the store before the "crash" --
        # this is what lets a requeued replay dedup instead of recompute.
        assert len(list((tmp_path / "objects").glob("*/*.json"))) == 1

    def test_chaos_stall_still_answers(self, tmp_path):
        responses = run_worker(
            [json.dumps({
                "verb": "evaluate", "id": "t0",
                "scenario": Scenario("cpu", "scan", **FAST).to_dict(),
                "store": str(tmp_path), "cache": True,
            })],
            chaos={"stall_after": 0, "stall": 0.0},
        )
        assert responses[0]["ok"]


# ---------------------------------------------------------------------------
# The supervised fleet (real subprocesses)
# ---------------------------------------------------------------------------


class TestWorkerFleet:
    def test_validation(self):
        with pytest.raises(ValueError, match="size"):
            WorkerFleet(0)
        with pytest.raises(ValueError, match="max_task_attempts"):
            WorkerFleet(1, max_task_attempts=0)

    def test_round_trip_preserves_order_and_merges_deltas(self, tmp_path):
        scenarios = [
            Scenario("cpu", "scan", **FAST),
            Scenario("cpu", "join", **FAST),
        ]
        with WorkerFleet(2, task_timeout=120.0) as fleet:
            assert len(fleet.pids()) == 2
            records, delta, degraded = fleet.evaluate(
                scenarios, store=str(tmp_path)
            )
            stats = fleet.stats()
        assert degraded == 0
        assert [r for r in records] == [s.records() for s in scenarios]
        assert delta["puts"] == 2
        assert stats["completed"] == 2 and stats["circuit"] == "closed"
        assert stats["spawned"] == 2 and stats["restarts"] == 0

    def test_crash_requeue_dedups_against_the_store(self, tmp_path):
        scenarios = [
            Scenario("cpu", "scan", **FAST),
            Scenario("cpu", "join", **FAST),
        ]
        with WorkerFleet(
            1, task_timeout=120.0, restart_backoff=NO_BACKOFF,
            env=chaos_env("kill_after=1,mode=post"),
        ) as fleet:
            records, delta, degraded = fleet.evaluate(
                scenarios, store=str(tmp_path)
            )
            stats = fleet.stats()
        assert degraded == 0
        assert [r for r in records] == [s.records() for s in scenarios]
        assert stats["restarts"] >= 1
        assert stats["requeues"] >= 1
        # The replayed task was served by the store, not re-simulated:
        # its first attempt's write landed before the SIGKILL.
        store = ResultStore(tmp_path)
        assert store.stats()["entries"] == 2

    def test_attempts_exhausted_degrades_in_process(self, tmp_path):
        scenario = Scenario("cpu", "scan", **FAST)
        with WorkerFleet(
            1, task_timeout=30.0, max_task_attempts=2,
            restart_backoff=NO_BACKOFF,
            breaker=CircuitBreaker(failure_threshold=100),
            env=chaos_env("kill_after=0,mode=pre"),
        ) as fleet:
            records, _, degraded = fleet.evaluate([scenario])
            stats = fleet.stats()
        assert degraded == 1
        assert records[0] == scenario.records()
        assert stats["degraded_tasks"] == 1
        assert stats["requeues"] == 1  # attempt 1 requeued, attempt 2 degraded

    def test_open_circuit_degrades_without_touching_workers(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after=9999.0)
        scenario = Scenario("cpu", "scan", **FAST)
        with WorkerFleet(1, breaker=breaker) as fleet:
            breaker.record_failure()  # trip it
            records, _, degraded = fleet.evaluate([scenario])
            stats = fleet.stats()
        assert degraded == 1
        assert records[0] == scenario.records()
        assert stats["completed"] == 0
        assert stats["circuit"] == "open"

    def test_bad_task_raises_instead_of_retrying(self):
        scenario = Scenario("cpu", "scan", **FAST)
        object.__setattr__(scenario, "operator", "nope")
        with WorkerFleet(1, task_timeout=30.0) as fleet:
            with pytest.raises(WorkerTaskError, match="nope"):
                fleet.evaluate([scenario])
            stats = fleet.stats()
        # A deterministic task failure must not be requeued as a crash.
        assert stats["requeues"] == 0 and stats["restarts"] == 0

    def test_heartbeat_detects_a_killed_worker(self):
        with WorkerFleet(
            1, heartbeat_interval=0.05, heartbeat_timeout=5.0,
            restart_backoff=NO_BACKOFF,
        ) as fleet:
            deadline = time.monotonic() + 5.0
            while not fleet.stats()["heartbeats"] and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fleet.stats()["heartbeats"] >= 1
            os.kill(fleet.pids()[0], signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while (
                not fleet.stats()["heartbeat_failures"]
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            stats = fleet.stats()
        assert stats["heartbeat_failures"] >= 1

    def test_batch_timeout_raises(self):
        with WorkerFleet(
            1, task_timeout=30.0, env=chaos_env("stall_after=0,stall=1.0"),
        ) as fleet:
            with pytest.raises(TimeoutError, match="did not complete"):
                fleet.evaluate([Scenario("cpu", "scan", **FAST)], timeout=0.05)

    def test_closed_fleet_refuses_work(self):
        fleet = WorkerFleet(1)
        fleet.close()
        fleet.close()  # idempotent
        assert fleet.pids() == []
        with pytest.raises(RuntimeError, match="closed"):
            fleet.evaluate([Scenario("cpu", "scan", **FAST)])


# ---------------------------------------------------------------------------
# Scheduler + daemon wiring
# ---------------------------------------------------------------------------


class TestSchedulerFleet:
    def test_workers_flag_builds_a_fleet(self, tmp_path):
        scheduler = BatchScheduler(store=tmp_path, workers=1)
        try:
            assert scheduler.fleet is not None
            results = scheduler.submit([
                Scenario("cpu", "scan", **FAST),
                Scenario("cpu", "scan", **FAST),  # dedup inside the batch
            ])
            stats = scheduler.stats()
        finally:
            scheduler.close()
        assert len(results.to_records()) == 2 * len(
            Scenario("cpu", "scan", **FAST).records()
        )
        assert stats["executed"] == 1 and stats["deduplicated"] == 1
        assert stats["degraded"] == 0
        assert stats["fleet"]["completed"] == 1
        # The worker's store traffic was merged into the parent handle.
        assert scheduler.store_stats()["puts"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            BatchScheduler(workers=-1)


class TestDaemonDeadlines:
    def test_dispatch_enforces_deadlines(self):
        daemon = EvaluationDaemon(BatchScheduler())
        now = time.monotonic()
        assert daemon.dispatch(
            {"verb": "ping", "deadline_s": 60.0}, received=now
        )["service"] == "repro.service"
        with pytest.raises(DeadlineExceeded):
            daemon.dispatch({"verb": "ping", "deadline_s": 0.0},
                            received=now - 1.0)
        with pytest.raises(ValueError, match="deadline_s"):
            daemon.dispatch({"verb": "ping", "deadline_s": "soon"},
                            received=now)

    def test_deadline_rejection_over_the_wire(self):
        handle = serve_background()
        try:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(ServiceError, match="DeadlineExceeded"):
                    client.call("stats", deadline_s=0.0)
                assert client.ping()["service"] == "repro.service"
        finally:
            handle.stop()


# ---------------------------------------------------------------------------
# The resilient client
# ---------------------------------------------------------------------------


class ScriptedServer(threading.Thread):
    """A TCP server whose per-connection behaviour is scripted.

    Behaviours, consumed one per accepted connection:

    - ``"reset"``: accept, then close immediately.
    - ``"garbage"``: answer the first request with a non-JSON line.
    - ``"serve:N"``: answer N requests with ``{"ok": true, ...}``, then
      close the connection.
    - ``"serve"``: answer every request until the client hangs up.
    - ``"error"``: answer every request with ``{"ok": false, ...}``.
    """

    def __init__(self, behaviors, result=None) -> None:
        super().__init__(name="scripted-server", daemon=True)
        self._behaviors = list(behaviors)
        self._result = result if result is not None else {"pong": True}
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self.requests_served = 0
        self.start()

    def _serve_conn(self, conn, budget) -> None:
        reader = conn.makefile("rb")
        served = 0
        for line in reader:
            self.requests_served += 1
            served += 1
            conn.sendall(
                (json.dumps({"ok": True, "result": self._result}) + "\n")
                .encode()
            )
            if budget is not None and served >= budget:
                break
        conn.close()

    def run(self) -> None:
        while self._behaviors:
            behavior = self._behaviors.pop(0)
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            if behavior == "reset":
                conn.close()
            elif behavior == "garbage":
                conn.makefile("rb").readline()
                conn.sendall(b"!!this is not json!!\n")
                conn.close()
            elif behavior == "error":
                reader = conn.makefile("rb")
                for _ in reader:
                    self.requests_served += 1
                    conn.sendall(
                        (json.dumps({"ok": False, "error": "boom"}) + "\n")
                        .encode()
                    )
                conn.close()
            elif behavior.startswith("serve:"):
                self._serve_conn(conn, int(behavior.split(":")[1]))
            else:  # "serve"
                self._serve_conn(conn, None)
        self._listener.close()

    def stop(self) -> None:
        self._behaviors = []
        try:
            self._listener.close()
        except OSError:
            pass


def no_sleep(_):
    return None


class TestResilientClient:
    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient(retries=-1)
        with pytest.raises(ValueError, match="degrade"):
            ServiceClient(degrade="sideways")
        assert "shutdown" not in IDEMPOTENT_VERBS

    def test_retries_survive_resets_and_garbage(self):
        server = ScriptedServer(["reset", "garbage", "serve"])
        try:
            client = ServiceClient(port=server.port, retries=3,
                                   sleep=no_sleep)
            assert client.call("ping") == {"pong": True}
            assert client.resilience["retries"] == 2
            client.close()
        finally:
            server.stop()

    def test_retry_budget_exhaustion_raises(self):
        server = ScriptedServer(["reset", "reset"])
        try:
            client = ServiceClient(port=server.port, retries=1,
                                   sleep=no_sleep)
            with pytest.raises(OSError):
                client.call("ping")
            assert client.resilience["retries"] == 1
        finally:
            server.stop()

    def test_stale_connection_gets_one_free_resend(self):
        server = ScriptedServer(["serve:1", "serve"])
        try:
            # retries=0: the transparent resend must not need the budget.
            client = ServiceClient(port=server.port, retries=0,
                                   sleep=no_sleep)
            assert client.call("ping") == {"pong": True}
            assert client.call("ping") == {"pong": True}  # stale socket
            assert client.resilience["reconnects"] == 1
            assert client.resilience["retries"] == 0
            client.close()
        finally:
            server.stop()

    def test_shutdown_is_never_retried_or_resent(self):
        server = ScriptedServer(["reset", "serve"])
        try:
            client = ServiceClient(port=server.port, retries=5,
                                   sleep=no_sleep)
            with pytest.raises(OSError):
                client.shutdown()
            assert client.resilience["retries"] == 0
        finally:
            server.stop()

    def test_daemon_reported_errors_are_not_retried(self):
        server = ScriptedServer(["error"])
        try:
            client = ServiceClient(port=server.port, retries=5,
                                   sleep=no_sleep)
            with pytest.raises(ServiceError, match="boom"):
                client.call("ping")
            assert server.requests_served == 1
            client.close()
        finally:
            server.stop()

    def test_deadline_stops_retrying_and_rides_the_wire(self):
        server = ScriptedServer(["reset", "serve"])
        try:
            client = ServiceClient(port=server.port, retries=5,
                                   deadline=0.0, sleep=no_sleep)
            # Budget already gone after the first transport failure:
            # no second attempt, despite the generous retry count.
            with pytest.raises(OSError):
                client.call("ping")
            assert client.resilience["retries"] == 0
        finally:
            server.stop()

    def _dead_port(self) -> int:
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            return probe.getsockname()[1]

    def test_degrade_local_falls_back_with_a_warning(self):
        scenario = Scenario("cpu", "scan", **FAST)
        before = common.degraded_count()
        client = ServiceClient(port=self._dead_port(), retries=0,
                               degrade="local", sleep=no_sleep)
        with pytest.warns(ServiceDegradedWarning, match="degrading evaluate"):
            results = client.evaluate(scenario)
        assert results.to_records() == scenario.run().to_records()
        assert client.resilience["degraded"] == 1
        assert common.degraded_count() == before + 1
        assert common.cache_stats()["degraded"] >= 1

    def test_degrade_local_covers_sweeps_too(self):
        grid = {"systems": ["cpu"], "workloads": ["scan"],
                "scales": [50.0], "num_partitions": [8]}
        client = ServiceClient(port=self._dead_port(), retries=0,
                               degrade="local", sleep=no_sleep)
        with pytest.warns(ServiceDegradedWarning, match="degrading sweep"):
            results = client.sweep(grid)
        assert len(results.to_records()) > 0

    def test_degrade_fail_is_the_default(self):
        client = ServiceClient(port=self._dead_port(), retries=0,
                               sleep=no_sleep)
        with pytest.raises(OSError):
            client.evaluate(Scenario("cpu", "scan", **FAST))
