"""Tests for the vault-controller extensions: permutable writes, the
shuffle barrier, object buffers and stream buffers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.dram import DramTiming, HmcGeometry
from repro.memctrl import (
    ObjectBuffer,
    PermutableRegionConfig,
    PermutableWriteEngine,
    ShuffleBarrier,
    StreamBufferSet,
    StreamDescriptor,
)


class TestPermutableRegionConfig:
    def test_basic(self):
        cfg = PermutableRegionConfig(base=0x1000, size_b=1024, object_b=16)
        assert cfg.capacity_objects == 64
        assert cfg.contains(0x1000)
        assert cfg.contains(0x13FF)
        assert not cfg.contains(0x1400)

    def test_rejects_oversized_objects(self):
        # Paper section 5.3: the 256 B object buffer bounds object size.
        with pytest.raises(ValueError, match="256"):
            PermutableRegionConfig(base=0, size_b=1024, object_b=512)

    def test_rejects_fractional_objects(self):
        with pytest.raises(ValueError):
            PermutableRegionConfig(base=0, size_b=100, object_b=16)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PermutableRegionConfig(base=0, size_b=0, object_b=16)


class TestPermutableWriteEngine:
    def make(self, capacity=8):
        return PermutableWriteEngine(
            PermutableRegionConfig(base=0, size_b=capacity * 16, object_b=16)
        )

    def test_sequential_tail_placement(self):
        engine = self.make()
        addrs = [engine.write(f"obj{i}") for i in range(4)]
        assert addrs == [0, 16, 32, 48]

    def test_marked_address_ignored_for_placement(self):
        engine = self.make()
        addr = engine.write("a", marked_addr=112)  # last slot requested
        assert addr == 0  # placed at the tail regardless

    def test_marked_address_validated(self):
        engine = self.make()
        with pytest.raises(ValueError):
            engine.write("a", marked_addr=4096)

    def test_multiset_preserved_any_order(self):
        engine = self.make(capacity=16)
        payloads = ["x", "y", "z", "x"]
        for p in payloads:
            engine.write(p)
        assert sorted(engine.drain()) == sorted(payloads)

    def test_overflow_raises_and_flags(self):
        engine = self.make(capacity=2)
        engine.write("a")
        engine.write("b")
        with pytest.raises(MemoryError):
            engine.write("c")
        assert engine.overflowed

    def test_counters(self):
        engine = self.make()
        engine.write("a")
        engine.write("b")
        assert engine.objects_written == 2
        assert engine.bytes_written == 32
        assert engine.next_tail_addr == 32

    @given(st.lists(st.integers(0, 1000), min_size=0, max_size=50))
    @settings(max_examples=50)
    def test_property_multiset_preserved(self, payloads):
        engine = PermutableWriteEngine(
            PermutableRegionConfig(base=0, size_b=max(16, len(payloads)) * 16, object_b=16)
        )
        for p in payloads:
            engine.write(p)
        assert sorted(engine.drain()) == sorted(payloads)


class TestShuffleBarrier:
    def test_protocol_happy_path(self):
        barrier = ShuffleBarrier(num_vaults=2)
        barrier.announce(0, 1, 64)
        barrier.announce(1, 1, 32)
        barrier.announce(0, 0, 0)
        barrier.announce(1, 0, 0)
        barrier.seal()
        assert barrier.expected_bytes(1) == 96
        assert not barrier.vault_complete(1)
        barrier.deliver(1, 64)
        barrier.deliver(1, 32)
        assert barrier.vault_complete(1)
        assert barrier.all_complete()
        assert barrier.completion_vector() == (True, True)

    def test_deliver_before_seal_rejected(self):
        barrier = ShuffleBarrier(2)
        barrier.announce(0, 1, 16)
        with pytest.raises(RuntimeError):
            barrier.deliver(1, 16)

    def test_announce_after_seal_rejected(self):
        barrier = ShuffleBarrier(2)
        barrier.seal()
        with pytest.raises(RuntimeError):
            barrier.announce(0, 1, 16)

    def test_over_delivery_rejected(self):
        barrier = ShuffleBarrier(2)
        barrier.announce(0, 1, 16)
        barrier.seal()
        barrier.deliver(1, 16)
        with pytest.raises(ValueError):
            barrier.deliver(1, 1)

    def test_double_announce_rejected(self):
        barrier = ShuffleBarrier(2)
        barrier.announce(0, 1, 16)
        with pytest.raises(ValueError):
            barrier.announce(0, 1, 32)

    def test_vault_range_checked(self):
        barrier = ShuffleBarrier(2)
        with pytest.raises(ValueError):
            barrier.announce(0, 5, 16)
        with pytest.raises(ValueError):
            barrier.vault_complete(9)

    def test_incomplete_until_all_vaults(self):
        barrier = ShuffleBarrier(3)
        for src in range(3):
            for dst in range(3):
                barrier.announce(src, dst, 8)
        barrier.seal()
        for dst in range(3):
            assert not barrier.all_complete()
            barrier.deliver(dst, 24)
        assert barrier.all_complete()


class TestObjectBuffer:
    def test_whole_object_drains(self):
        buf = ObjectBuffer(object_b=16)
        assert buf.store(8, "lo") is None
        msg = buf.store(8, "hi")
        assert msg == ["lo", "hi"]
        assert buf.drained_messages == 1
        assert buf.pending_b == 0

    def test_single_store_object(self):
        buf = ObjectBuffer(object_b=16)
        assert buf.store(16, "whole") == ["whole"]

    def test_straddle_rejected(self):
        buf = ObjectBuffer(object_b=16)
        buf.store(12)
        with pytest.raises(ValueError, match="straddles"):
            buf.store(8)

    def test_oversized_store_rejected(self):
        buf = ObjectBuffer(object_b=16)
        with pytest.raises(ValueError):
            buf.store(32)

    def test_object_larger_than_buffer_rejected(self):
        with pytest.raises(ValueError):
            ObjectBuffer(object_b=512)

    def test_flush_check(self):
        buf = ObjectBuffer(object_b=16)
        buf.flush_check()  # empty: fine
        buf.store(8)
        with pytest.raises(RuntimeError, match="incomplete"):
            buf.flush_check()


class TestStreamBufferSet:
    def make(self):
        return StreamBufferSet(HmcGeometry(), DramTiming())

    def test_configure_and_pop(self):
        sbs = self.make()
        sbs.configure([StreamDescriptor(0, 1024), StreamDescriptor(4096, 512)])
        assert sbs.head_addr(0) == 0
        addr = sbs.pop(0, 16)
        assert addr == 0
        assert sbs.head_addr(0) == 16
        assert sbs.remaining_b(1) == 512

    def test_all_done(self):
        sbs = self.make()
        sbs.configure([StreamDescriptor(0, 32)])
        assert not sbs.all_done()
        sbs.pop(0, 32)
        assert sbs.all_done()
        assert sbs.head_addr(0) is None

    def test_refills_counted(self):
        sbs = self.make()
        sbs.configure([StreamDescriptor(0, 384 * 4)])
        start = sbs.refills
        sbs.pop(0, 384)  # crosses into the second buffer-full
        assert sbs.refills > start

    def test_overpop_rejected(self):
        sbs = self.make()
        sbs.configure([StreamDescriptor(0, 16)])
        with pytest.raises(ValueError):
            sbs.pop(0, 32)

    def test_too_many_streams_rejected(self):
        sbs = self.make()
        with pytest.raises(ValueError):
            sbs.configure([StreamDescriptor(i * 100, 100) for i in range(9)])

    def test_unconfigured_rejected(self):
        with pytest.raises(RuntimeError):
            self.make().all_done()

    def test_stall_free_condition(self):
        sbs = self.make()
        # 8 GB/s consumption: the 384 B buffer covers 33.6 ns x 8 GB/s = 269 B.
        assert sbs.steady_state_stall_free(8e9)
        # Over the vault's peak: cannot be stall-free.
        assert not sbs.steady_state_stall_free(9e9)
        with pytest.raises(ValueError):
            sbs.steady_state_stall_free(0)

    def test_bytes_streamed(self):
        sbs = self.make()
        sbs.configure([StreamDescriptor(0, 64)])
        sbs.pop(0, 16)
        sbs.pop(0, 16)
        assert sbs.bytes_streamed == 32
