"""Equivalence suite for the segmented columnar kernel layer.

Every rebased operator must be **byte-identical** to its per-partition
reference (``segmented=False``), which PR 2's suite already pins against
the original scalar loops -- so equality here transitively pins the
columnar kernels to the seed behaviour.  Coverage spans the four
presets, uniform and skewed workloads, and the empty/singleton-segment
edge cases the segments invariants allow.
"""

from functools import partial

import numpy as np
import pytest

from repro.analytics.tuples import TUPLE_DTYPE, Relation
from repro.analytics.workload import (
    make_groupby_workload,
    make_join_workload,
    make_scan_workload,
    make_sort_workload,
    split_relation,
)
from repro.columnar import (
    SegmentedColumns,
    segmented_mergesort,
    segmented_searchsorted,
    segmented_sorted_groups,
    sorted_group_aggregates,
)
from repro.columnar.hashtable import SegmentedLinearProbingTable
from repro.operators.groupby import _aggregate_sorted, run_groupby
from repro.operators.hashtable import LinearProbingHashTable
from repro.operators.join import run_join
from repro.operators.scan import run_scan
from repro.operators.sort_algos import mergesort
from repro.operators.sort_op import run_sort
from repro.shuffle.engine import ShuffleEngine
from repro.shuffle.interleave import random_interleave
from repro.systems import build_system
from tests.test_vectorized_equivalence import assert_shuffles_identical, make_sources


def random_columns(rng, num_segments, max_len, key_space=1 << 40):
    """Random segmented columns with empty and singleton segments."""
    lens = rng.integers(0, max_len + 1, num_segments)
    if num_segments >= 3:
        lens[0] = 0  # leading empty segment
        lens[1] = 1  # singleton
        lens[-1] = 0  # trailing empty segment
    segments = np.zeros(num_segments + 1, dtype=np.int64)
    np.cumsum(lens, out=segments[1:])
    total = int(segments[-1])
    keys = rng.integers(0, key_space, total, dtype=np.uint64)
    payloads = rng.integers(0, 1 << 60, total, dtype=np.uint64)
    return SegmentedColumns(keys=keys, payloads=payloads, segments=segments)


def struct_of(columns, lo, hi):
    out = np.empty(hi - lo, dtype=TUPLE_DTYPE)
    out["key"] = columns.keys[lo:hi]
    out["payload"] = columns.payloads[lo:hi]
    return out


class TestSegmentedColumns:
    def test_split_relation_flattens_zero_copy(self):
        rng = np.random.default_rng(0)
        rel = Relation.from_arrays(
            rng.integers(0, 1 << 40, 999, dtype=np.uint64),
            rng.integers(0, 1 << 40, 999, dtype=np.uint64),
        )
        parts = split_relation(rel, 7)
        columns = SegmentedColumns.from_relations(parts)
        assert np.shares_memory(columns.keys, rel.data)
        assert np.array_equal(columns.keys, rel.keys)
        assert np.array_equal(columns.payloads, rel.payloads)
        assert columns.segments.tolist() == [0] + list(
            np.cumsum([len(p) for p in parts])
        )

    def test_independent_relations_concatenate(self):
        rng = np.random.default_rng(1)
        parts = [
            Relation.from_arrays(
                rng.integers(0, 99, n, dtype=np.uint64),
                rng.integers(0, 99, n, dtype=np.uint64),
            )
            for n in (5, 0, 1, 17)
        ]
        columns = SegmentedColumns.from_relations(parts)
        assert columns.num_segments == 4
        assert columns.segment_lengths().tolist() == [5, 0, 1, 17]
        assert np.array_equal(
            columns.keys, np.concatenate([p.keys for p in parts])
        )

    def test_empty(self):
        columns = SegmentedColumns.from_relations([])
        assert columns.num_segments == 0
        assert columns.total == 0

    def test_round_trip(self):
        columns = random_columns(np.random.default_rng(2), 9, 40)
        rels = columns.to_relations("seg")
        back = SegmentedColumns.from_relations(rels)
        assert np.array_equal(back.keys, columns.keys)
        assert np.array_equal(back.payloads, columns.payloads)
        assert np.array_equal(back.segments, columns.segments)

    def test_rejects_bad_segments(self):
        keys = np.zeros(4, dtype=np.uint64)
        with pytest.raises(ValueError):
            SegmentedColumns(keys, keys.copy(), np.array([0, 5], dtype=np.int64))
        with pytest.raises(ValueError):
            SegmentedColumns(keys, keys.copy(), np.array([0, 3, 2, 4], dtype=np.int64))


class TestSegmentedSort:
    @pytest.mark.parametrize("simd", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_per_partition_mergesort(self, simd, seed):
        rng = np.random.default_rng(seed)
        # Narrow key space: plenty of duplicates to exercise stability.
        columns = random_columns(rng, 12, 120, key_space=64)
        keys, payloads = segmented_mergesort(
            columns.keys, columns.payloads, columns.segments, bitonic_initial=simd
        )
        for i in range(columns.num_segments):
            lo, hi = columns.segments[i], columns.segments[i + 1]
            if hi == lo:
                continue
            ref, _ = mergesort(struct_of(columns, lo, hi), bitonic_initial=simd)
            assert np.array_equal(keys[lo:hi], ref["key"]), (i, simd)
            assert np.array_equal(payloads[lo:hi], ref["payload"]), (i, simd)

    def test_pad_sentinel_keys_survive(self):
        # Keys equal to the bitonic pad sentinel must sort like any max key.
        top = np.uint64(0xFFFFFFFFFFFFFFFF)
        keys = np.array([top, 3, top, 1, 2], dtype=np.uint64)
        payloads = np.arange(5, dtype=np.uint64)
        segments = np.array([0, 5], dtype=np.int64)
        out_keys, out_payloads = segmented_mergesort(
            keys, payloads, segments, bitonic_initial=True
        )
        data = np.empty(5, dtype=TUPLE_DTYPE)
        data["key"], data["payload"] = keys, payloads
        ref, _ = mergesort(data, bitonic_initial=True)
        assert np.array_equal(out_keys, ref["key"])
        assert np.array_equal(out_payloads, ref["payload"])


class TestSortedGroupAggregates:
    @pytest.mark.parametrize("group_scale", [4, 200])
    def test_matches_per_group_numpy(self, group_scale):
        # group_scale=200 forces groups past numpy's pairwise-summation
        # blocking threshold, the regime where association matters.
        rng = np.random.default_rng(group_scale)
        columns = random_columns(rng, 8, 400, key_space=max(2, 400 // group_scale))
        keys, payloads = segmented_mergesort(
            columns.keys, columns.payloads, columns.segments
        )
        starts, lens, segs = segmented_sorted_groups(keys, columns.segments)
        values = payloads.astype(np.float64)
        counts, sums, mins, maxs, avgs, sumsqs = sorted_group_aggregates(
            values, starts, lens
        )
        cursor = 0
        for i in range(columns.num_segments):
            lo, hi = columns.segments[i], columns.segments[i + 1]
            if hi == lo:
                continue
            ref = _aggregate_sorted(keys[lo:hi], payloads[lo:hi])
            for key, expected in ref.items():
                assert int(keys[starts[cursor]]) == key
                assert segs[cursor] == i
                got = {
                    "count": counts[cursor],
                    "sum": sums[cursor],
                    "min": mins[cursor],
                    "max": maxs[cursor],
                    "avg": avgs[cursor],
                    "sumsq": sumsqs[cursor],
                }
                for name, value in expected.items():
                    # Byte-identical floats, not approx-equal.
                    assert got[name] == value, (name, key)
                cursor += 1
        assert cursor == len(starts)


class TestSegmentedHashTable:
    def test_matches_scalar_tables(self):
        rng = np.random.default_rng(5)
        seg_sizes = [0, 1, 37, 200, 3]
        keys = [
            rng.integers(0, 1 << 40, n, dtype=np.uint64) for n in seg_sizes
        ]
        payloads = [k * np.uint64(3) for k in keys]
        active = [i for i, n in enumerate(seg_sizes) if n > 0]
        table = SegmentedLinearProbingTable(
            np.array([seg_sizes[i] for i in active])
        )
        flat_keys = np.concatenate([keys[i] for i in active])
        flat_payloads = np.concatenate([payloads[i] for i in active])
        seg_of = np.repeat(np.arange(len(active)), [seg_sizes[i] for i in active])
        table.insert_batch(flat_keys, flat_payloads, seg_of)

        probes = [
            np.concatenate([keys[i][: n // 2], rng.integers(0, 1 << 40, 20, dtype=np.uint64)])
            for i, n in ((i, seg_sizes[i]) for i in active)
        ]
        flat_probes = np.concatenate(probes)
        probe_seg = np.repeat(np.arange(len(active)), [len(p) for p in probes])
        got_payloads, got_found = table.lookup_batch(flat_probes, probe_seg)

        offset = 0
        for pos, i in enumerate(active):
            scalar = LinearProbingHashTable(seg_sizes[i])
            scalar.insert_batch(keys[i], payloads[i])
            ref_payloads, ref_found = scalar.lookup_batch(probes[pos])
            span = slice(offset, offset + len(probes[pos]))
            assert np.array_equal(got_payloads[span], ref_payloads), i
            assert np.array_equal(got_found[span], ref_found), i
            assert table.insert_probe_steps[pos] == scalar.insert_probe_steps, i
            assert table.lookup_probe_steps[pos] == scalar.lookup_probe_steps, i
            assert table.capacities[pos] == scalar.capacity, i
            offset += len(probes[pos])


class TestSegmentedSearchsorted:
    @pytest.mark.parametrize("key_space_bits", [40, 63])
    def test_matches_per_segment(self, key_space_bits):
        # 63-bit keys with >1 segment cannot use the composite code and
        # must take the per-segment fallback.
        rng = np.random.default_rng(7)
        sorted_cols = random_columns(rng, 6, 80, key_space=1 << key_space_bits)
        keys, _ = segmented_mergesort(
            sorted_cols.keys, sorted_cols.payloads, sorted_cols.segments
        )
        query = random_columns(rng, 6, 50, key_space=1 << key_space_bits)
        idx, valid = segmented_searchsorted(
            keys, sorted_cols.segments, query.keys, query.segments, key_space_bits
        )
        for seg in range(6):
            q_lo, q_hi = query.segments[seg], query.segments[seg + 1]
            r_lo, r_hi = sorted_cols.segments[seg], sorted_cols.segments[seg + 1]
            if r_hi == r_lo:
                assert not valid[q_lo:q_hi].any()
                continue
            assert valid[q_lo:q_hi].all()
            ref = np.minimum(
                np.searchsorted(keys[r_lo:r_hi], query.keys[q_lo:q_hi]),
                r_hi - r_lo - 1,
            )
            assert np.array_equal(idx[q_lo:q_hi] - r_lo, ref), seg

    @staticmethod
    def _per_segment_reference(keys, segments, q_keys, q_segments):
        idx = np.zeros(len(q_keys), dtype=np.int64)
        valid = np.zeros(len(q_keys), dtype=bool)
        for seg in range(len(segments) - 1):
            q_lo, q_hi = q_segments[seg], q_segments[seg + 1]
            r_lo, r_hi = segments[seg], segments[seg + 1]
            if r_hi == r_lo or q_hi == q_lo:
                continue
            valid[q_lo:q_hi] = True
            idx[q_lo:q_hi] = r_lo + np.minimum(
                np.searchsorted(keys[r_lo:r_hi], q_keys[q_lo:q_hi]),
                r_hi - r_lo - 1,
            )
        return idx, valid

    @pytest.mark.parametrize("num_segments", [8, 64])
    def test_three_column_composite_past_the_bit_budget(self, num_segments):
        # A (28, 20, 14)-bit packed triple: 62 bits of key. With >= 8
        # segments the composite code would need 65+ bits, so the kernel
        # must take the per-segment fallback -- and still agree with the
        # reference loop exactly.
        from repro.suites.families import ColumnSpec, pack_columns

        specs = (
            ColumnSpec("hi", 28, 1 << 28),
            ColumnSpec("mid", 20, 1 << 20),
            ColumnSpec("lo", 14, 1 << 14),
        )
        bits = 62
        rng = np.random.default_rng(11)

        def packed(n):
            return pack_columns(
                [
                    rng.integers(0, s.cardinality, size=n, dtype=np.uint64)
                    for s in specs
                ],
                specs,
            )

        n_sorted, n_query = 400, 300
        seg = np.sort(rng.integers(0, num_segments, size=n_sorted))
        segments = np.searchsorted(seg, np.arange(num_segments + 1))
        keys = packed(n_sorted)
        for s in range(num_segments):
            keys[segments[s]:segments[s + 1]].sort()
        q_seg = np.sort(rng.integers(0, num_segments, size=n_query))
        q_segments = np.searchsorted(q_seg, np.arange(num_segments + 1))
        q_keys = packed(n_query)

        seg_bits = max(1, num_segments - 1).bit_length()
        assert bits + seg_bits > 64  # really past the budget
        idx, valid = segmented_searchsorted(
            keys, segments, q_keys, q_segments, bits
        )
        ref_idx, ref_valid = self._per_segment_reference(
            keys, segments, q_keys, q_segments
        )
        assert np.array_equal(valid, ref_valid)
        assert np.array_equal(idx[valid], ref_idx[valid])

    def test_fallback_agrees_with_composite_path(self):
        # Same 20-bit data probed twice: once under the honest
        # declaration (composite path) and once under an inflated
        # key_space_bits that forces the fallback. Both paths must
        # return identical results -- the discrepancy this guards
        # against is one path clamping differently from the other.
        rng = np.random.default_rng(13)
        sorted_cols = random_columns(rng, 8, 120, key_space=1 << 20)
        keys, _ = segmented_mergesort(
            sorted_cols.keys, sorted_cols.payloads, sorted_cols.segments
        )
        query = random_columns(rng, 8, 90, key_space=1 << 20)
        composite = segmented_searchsorted(
            keys, sorted_cols.segments, query.keys, query.segments, 20
        )
        fallback = segmented_searchsorted(
            keys, sorted_cols.segments, query.keys, query.segments, 62
        )
        assert np.array_equal(composite[0], fallback[0])
        assert np.array_equal(composite[1], fallback[1])

    def test_segment_count_mismatch_raises(self):
        keys = np.arange(10, dtype=np.uint64)
        with pytest.raises(ValueError, match="probes segment i"):
            segmented_searchsorted(
                keys,
                np.array([0, 5, 10]),
                keys[:4],
                np.array([0, 2, 3, 4]),
                16,
            )


class TestSegmentedShuffle:
    @pytest.mark.parametrize("permutable", [False, True])
    @pytest.mark.parametrize("skew", [False, True])
    @pytest.mark.parametrize("n_per_src", [0, 8, 2000])
    def test_matches_per_destination_path(self, permutable, skew, n_per_src):
        rng = np.random.default_rng(n_per_src + 17 * skew)
        sources, dest_maps = make_sources(
            rng, num_src=5, num_dest=8, n_per_src=n_per_src, skew=skew
        )
        seg = ShuffleEngine(8, permutable=permutable).run(sources, dest_maps)
        ref = ShuffleEngine(8, permutable=permutable, segmented=False).run(
            sources, dest_maps
        )
        assert seg.columns is not None and ref.columns is None
        assert_shuffles_identical(seg, ref)
        # The SoA view mirrors the destinations without copying.
        flat = np.concatenate([d.data for d in seg.destinations])
        assert np.array_equal(seg.columns.keys, flat["key"])
        if seg.total_tuples:
            full = max(range(8), key=lambda d: len(seg.destinations[d]))
            assert np.shares_memory(seg.columns.keys, seg.destinations[full].data)

    @pytest.mark.parametrize("permutable", [False, True])
    def test_random_interleave_model(self, permutable):
        rng = np.random.default_rng(11)
        sources, dest_maps = make_sources(rng, 4, 6, 300, skew=True)
        interleave = partial(random_interleave, seed=23)
        seg = ShuffleEngine(6, permutable=permutable, interleave=interleave).run(
            sources, dest_maps
        )
        ref = ShuffleEngine(
            6, permutable=permutable, interleave=interleave, segmented=False
        ).run(sources, dest_maps)
        assert_shuffles_identical(seg, ref)


def _tiny_workloads(operator):
    """Workloads whose shuffles leave many destinations empty (64
    partitions, < 200 tuples) plus skewed group structure."""
    if operator == "scan":
        return [make_scan_workload(150, 64, seed=3), make_scan_workload(1, 1, seed=4)]
    if operator == "sort":
        return [make_sort_workload(150, 64, seed=3), make_sort_workload(2, 2, seed=4)]
    if operator == "groupby":
        return [
            make_groupby_workload(150, 64, seed=3),
            # avg group of 75: groups far beyond numpy's pairwise block,
            # many partitions empty.
            make_groupby_workload(150, 64, avg_group_size=75.0, seed=5),
        ]
    return [make_join_workload(40, 150, 64, seed=3)]


def _assert_results_identical(operator, seg, ref):
    assert [p.phase for p in seg.phase_perfs] == [p.phase for p in ref.phase_perfs]
    assert [p.time_s for p in seg.phase_perfs] == [p.time_s for p in ref.phase_perfs]
    assert seg.energy.total_j == ref.energy.total_j
    if operator == "sort":
        assert np.array_equal(seg.output.data, ref.output.data)
        assert seg.output.name == ref.output.name
    elif operator == "groupby":
        # Same keys, same insertion order, byte-identical floats.
        assert list(seg.output.groups) == list(ref.output.groups)
        assert seg.output.groups == ref.output.groups
    else:
        assert seg.output == ref.output
    assert seg.metadata == ref.metadata


class TestOperatorEquivalence:
    """segmented=True == segmented=False through the full machine stack."""

    PRESETS = ("cpu", "nmp-rand", "nmp-seq", "mondrian")
    OPERATORS = ("scan", "sort", "groupby", "join")

    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("operator", OPERATORS)
    def test_default_workloads(self, preset, operator):
        from repro.experiments import common

        machine = build_system(preset)
        workload = common.make_workload(operator)
        seg = machine.run_operator(operator, workload, 500.0, segmented=True)
        ref = machine.run_operator(operator, workload, 500.0, segmented=False)
        _assert_results_identical(operator, seg, ref)

    @pytest.mark.parametrize("preset", ("cpu", "mondrian"))
    @pytest.mark.parametrize("operator", OPERATORS)
    def test_sparse_and_skewed_workloads(self, preset, operator):
        machine = build_system(preset)
        for workload in _tiny_workloads(operator):
            seg = machine.run_operator(operator, workload, segmented=True)
            ref = machine.run_operator(operator, workload, segmented=False)
            _assert_results_identical(operator, seg, ref)

    @pytest.mark.parametrize("operator", OPERATORS)
    def test_runner_defaults_to_segmented(self, operator):
        runner = {
            "scan": run_scan,
            "sort": run_sort,
            "groupby": run_groupby,
            "join": run_join,
        }[operator]
        workload = _tiny_workloads(operator)[0]
        variant = build_system("mondrian").variant(workload.num_partitions)
        default = runner(workload, variant)
        explicit = runner(workload, variant, segmented=True)
        assert default.phases == explicit.phases


class TestImportOrders:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.columnar",
            "repro.columnar.soa",
            "repro.columnar.hashtable",
            "repro.analytics.workload",
            "repro.shuffle.engine",
            "repro.operators",
        ],
    )
    def test_fresh_interpreter_can_import_first(self, module):
        """No import order closes a cycle (columnar <-> analytics <->
        operators <-> shuffle); regression test for the lazy imports in
        workload.py and columnar/hashtable.py."""
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        proc = subprocess.run(
            [sys.executable, "-c", f"import {module}"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(root / "src")},
        )
        assert proc.returncode == 0, proc.stderr


class TestWorkloadFlatViews:
    def test_zero_copy_and_consistent(self):
        workload = make_scan_workload(777, 13, seed=9)
        flat = workload.flat
        assert flat.num_segments == workload.num_partitions
        assert flat.total == workload.total_tuples
        assert np.shares_memory(flat.keys, workload.partitions[0].data)
        join = make_join_workload(50, 120, 8, seed=9)
        assert join.r_flat.total == join.n_r
        assert join.s_flat.total == join.n_s
