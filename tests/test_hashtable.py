"""Tests for the vectorized linear-probing hash table."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.operators.hashtable import EMPTY_KEY, LinearProbingHashTable


class TestBasics:
    def test_insert_and_lookup(self):
        t = LinearProbingHashTable(4)
        t.insert_batch(np.array([1, 2, 3], dtype=np.uint64),
                       np.array([10, 20, 30], dtype=np.uint64))
        payloads, found = t.lookup_batch(np.array([2, 3, 99], dtype=np.uint64))
        assert list(found) == [True, True, False]
        assert payloads[0] == 20 and payloads[1] == 30

    def test_capacity_power_of_two(self):
        t = LinearProbingHashTable(100, load_factor=0.5)
        assert t.capacity == 256
        assert t.capacity & (t.capacity - 1) == 0

    def test_load(self):
        t = LinearProbingHashTable(8, load_factor=0.5)
        t.insert_batch(np.arange(8, dtype=np.uint64), np.arange(8, dtype=np.uint64))
        assert t.items == 8
        assert t.load == pytest.approx(8 / t.capacity)

    def test_footprint(self):
        t = LinearProbingHashTable(100)
        assert t.size_b == t.capacity * 16

    def test_overfill_rejected(self):
        t = LinearProbingHashTable(1, load_factor=1.0)
        with pytest.raises(MemoryError):
            t.insert_batch(np.arange(1000, dtype=np.uint64),
                           np.arange(1000, dtype=np.uint64))

    def test_sentinel_key_rejected(self):
        t = LinearProbingHashTable(4)
        with pytest.raises(ValueError):
            t.insert_batch(np.array([EMPTY_KEY], dtype=np.uint64),
                           np.array([0], dtype=np.uint64))

    def test_mismatched_batch_rejected(self):
        t = LinearProbingHashTable(4)
        with pytest.raises(ValueError):
            t.insert_batch(np.array([1], dtype=np.uint64),
                           np.array([1, 2], dtype=np.uint64))

    def test_probe_stats_accumulate(self):
        t = LinearProbingHashTable(64)
        keys = np.arange(64, dtype=np.uint64)
        t.insert_batch(keys, keys)
        assert t.insert_probe_steps >= 64
        t.lookup_batch(keys)
        assert t.lookup_probe_steps >= 64

    def test_duplicate_keys_first_wins(self):
        t = LinearProbingHashTable(8)
        t.insert_batch(np.array([5], dtype=np.uint64), np.array([1], dtype=np.uint64))
        t.insert_batch(np.array([5], dtype=np.uint64), np.array([2], dtype=np.uint64))
        payloads, found = t.lookup_batch(np.array([5], dtype=np.uint64))
        assert found[0] and payloads[0] == 1

    def test_contains(self):
        t = LinearProbingHashTable(4)
        t.insert_batch(np.array([7], dtype=np.uint64), np.array([70], dtype=np.uint64))
        assert list(t.contains_batch(np.array([7, 8], dtype=np.uint64))) == [True, False]

    def test_collision_heavy_batch(self):
        # Insert a full table's worth in one batch: every slot conflict
        # must resolve by probing.
        t = LinearProbingHashTable(128, load_factor=1.0)
        keys = np.arange(128, dtype=np.uint64) * np.uint64(128)  # force clustering
        t.insert_batch(keys, keys)
        payloads, found = t.lookup_batch(keys)
        assert found.all()
        assert np.array_equal(payloads, keys)


class TestPropertyBased:
    @given(
        st.lists(
            st.integers(0, (1 << 48) - 1), min_size=1, max_size=200, unique=True
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_semantics(self, key_list):
        keys = np.array(key_list, dtype=np.uint64)
        payloads = (keys * np.uint64(3)) % np.uint64(1 << 30)
        t = LinearProbingHashTable(len(keys))
        t.insert_batch(keys, payloads)
        reference = dict(zip(key_list, payloads.tolist()))
        probe_keys = np.array(key_list + [max(key_list) + 1], dtype=np.uint64)
        got, found = t.lookup_batch(probe_keys)
        for k, g, f in zip(probe_keys.tolist(), got.tolist(), found.tolist()):
            if k in reference:
                assert f and g == reference[k]
            else:
                assert not f

    @given(st.integers(1, 500))
    @settings(max_examples=20, deadline=None)
    def test_all_inserted_found(self, n):
        rng = np.random.default_rng(n)
        keys = np.unique(rng.integers(0, 1 << 40, n * 2, dtype=np.uint64))[:n]
        t = LinearProbingHashTable(len(keys))
        t.insert_batch(keys, keys)
        _, found = t.lookup_batch(keys)
        assert found.all()
