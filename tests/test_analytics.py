"""Tests for relations, hashing, histograms and workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics import (
    KEY_B,
    PAYLOAD_B,
    Relation,
    TUPLE_B,
    bucket_of_high_bits,
    bucket_of_low_bits,
    build_histogram,
    hash_table_slot,
    make_groupby_workload,
    make_join_workload,
    make_scan_workload,
    make_sort_workload,
    multiplicative_hash,
    prefix_sum,
)
from repro.analytics.histogram import combine_histograms, source_write_offsets


class TestRelation:
    def test_tuple_layout(self):
        assert KEY_B == 8 and PAYLOAD_B == 8 and TUPLE_B == 16

    def test_from_arrays_and_views(self):
        rel = Relation.from_arrays([1, 2, 3], [10, 20, 30], "r")
        assert len(rel) == 3
        assert rel.size_b == 48
        assert list(rel.keys) == [1, 2, 3]
        assert list(rel.payloads) == [10, 20, 30]

    def test_from_pairs(self):
        rel = Relation.from_pairs([(1, 10), (2, 20)])
        assert list(rel.keys) == [1, 2]

    def test_empty(self):
        rel = Relation.empty()
        assert len(rel) == 0
        assert rel.is_sorted()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Relation.from_arrays([1, 2], [10])

    def test_sorted_by_key(self):
        rel = Relation.from_arrays([3, 1, 2], [30, 10, 20])
        s = rel.sorted_by_key()
        assert list(s.keys) == [1, 2, 3]
        assert list(s.payloads) == [10, 20, 30]
        assert s.is_sorted()
        assert not rel.is_sorted()

    def test_slice_take_concat(self):
        rel = Relation.from_arrays([1, 2, 3, 4], [1, 2, 3, 4])
        assert list(rel.slice(1, 3).keys) == [2, 3]
        assert list(rel.take(np.array([0, 3])).keys) == [1, 4]
        both = rel.slice(0, 2).concat(rel.slice(2, 4))
        assert both == rel

    def test_multiset_equality(self):
        a = Relation.from_arrays([1, 2, 3], [1, 2, 3])
        b = Relation.from_arrays([3, 1, 2], [3, 1, 2])
        c = Relation.from_arrays([3, 1, 2], [3, 1, 99])
        assert a.multiset_equal(b)
        assert not a.multiset_equal(c)
        assert not a == b  # order-sensitive equality differs

    def test_dtype_enforced(self):
        with pytest.raises(TypeError):
            Relation(np.zeros(4, dtype=np.float64))


class TestHashing:
    def test_low_bits(self):
        keys = np.array([0b1011, 0b0100], dtype=np.uint64)
        assert list(bucket_of_low_bits(keys, 2)) == [0b11, 0b00]

    def test_high_bits(self):
        keys = np.array([0, 255], dtype=np.uint64)
        buckets = bucket_of_high_bits(keys, 2, key_space_bits=8)
        assert list(buckets) == [0, 3]

    def test_high_bits_order_preserving(self):
        keys = np.sort(np.random.default_rng(0).integers(0, 1 << 48, 100, dtype=np.uint64))
        buckets = bucket_of_high_bits(keys, 4, 48)
        assert all(buckets[i] <= buckets[i + 1] for i in range(99))

    def test_multiplicative_hash_range(self):
        keys = np.arange(1000, dtype=np.uint64)
        h = multiplicative_hash(keys, 6)
        assert h.min() >= 0 and h.max() < 64

    def test_multiplicative_hash_spreads(self):
        # Sequential keys should spread across buckets, unlike low bits.
        keys = np.arange(0, 64000, 64, dtype=np.uint64)
        h = multiplicative_hash(keys, 6)
        assert len(np.unique(h)) > 32

    def test_hash_table_slot_pow2_only(self):
        keys = np.arange(10, dtype=np.uint64)
        slots = hash_table_slot(keys, 16)
        assert slots.max() < 16
        with pytest.raises(ValueError):
            hash_table_slot(keys, 12)

    def test_bit_bounds(self):
        keys = np.array([1], dtype=np.uint64)
        with pytest.raises(ValueError):
            bucket_of_low_bits(keys, 0)
        with pytest.raises(ValueError):
            bucket_of_high_bits(keys, 10, key_space_bits=8)

    @given(st.integers(0, (1 << 48) - 1), st.integers(1, 16))
    @settings(max_examples=100)
    def test_low_bits_deterministic(self, key, bits):
        keys = np.array([key], dtype=np.uint64)
        a = bucket_of_low_bits(keys, bits)[0]
        b = bucket_of_low_bits(keys, bits)[0]
        assert a == b == key % (1 << bits)


class TestHistogram:
    def test_build(self):
        hist = build_histogram(np.array([0, 1, 1, 3]), 4)
        assert list(hist) == [1, 2, 0, 1]

    def test_prefix_sum_exclusive(self):
        assert list(prefix_sum(np.array([1, 2, 0, 1]))) == [0, 1, 3, 3]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_histogram(np.array([5]), 4)

    def test_combine(self):
        total = combine_histograms([np.array([1, 0]), np.array([2, 3])])
        assert list(total) == [3, 3]
        with pytest.raises(ValueError):
            combine_histograms([])

    def test_source_write_offsets(self):
        offsets = source_write_offsets([np.array([2, 1]), np.array([1, 1])])
        assert list(offsets[0]) == [0, 0]
        assert list(offsets[1]) == [2, 1]


class TestWorkloads:
    def test_scan_has_findable_key(self):
        w = make_scan_workload(1000, num_partitions=4, seed=1)
        found = sum(
            int(np.count_nonzero(p.keys == np.uint64(w.search_key)))
            for p in w.partitions
        )
        assert found >= 1
        assert w.total_tuples == 1000

    def test_partitions_cover_all_tuples(self):
        w = make_sort_workload(1003, num_partitions=7, seed=2)
        assert sum(len(p) for p in w.partitions) == 1003

    def test_join_foreign_key_property(self):
        w = make_join_workload(500, 2000, num_partitions=4, seed=3)
        r_keys = set()
        for p in w.r_partitions:
            r_keys.update(int(k) for k in p.keys)
        assert len(r_keys) == 500  # R keys unique
        for p in w.s_partitions:
            assert all(int(k) in r_keys for k in p.keys)

    def test_groupby_average_group_size(self):
        w = make_groupby_workload(8000, num_partitions=4, avg_group_size=4.0, seed=4)
        keys = np.concatenate([p.keys for p in w.partitions])
        avg = len(keys) / len(np.unique(keys))
        assert 3.0 < avg < 5.5

    def test_deterministic_by_seed(self):
        a = make_sort_workload(100, 2, seed=9)
        b = make_sort_workload(100, 2, seed=9)
        assert a.partitions[0] == b.partitions[0]
        c = make_sort_workload(100, 2, seed=10)
        assert not a.partitions[0] == c.partitions[0]

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            make_scan_workload(0)
        with pytest.raises(ValueError):
            make_join_workload(0, 10)
        with pytest.raises(ValueError):
            make_groupby_workload(100, avg_group_size=0.5)

    def test_keys_bounded_by_key_space(self):
        w = make_sort_workload(1000, 4, seed=5, key_space_bits=20)
        for p in w.partitions:
            if len(p):
                assert int(p.keys.max()) < (1 << 20)
