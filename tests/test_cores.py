"""Tests for the analytic core models and the MLP arithmetic."""

import pytest

from repro.config.cores import cortex_a35_mondrian, cortex_a57_cpu, krait400_nmp
from repro.cores import (
    InOrderSimdCoreModel,
    MemEnvironment,
    OutOfOrderCoreModel,
    WorkProfile,
    build_core_model,
    mlp_limited_bandwidth_bps,
    outstanding_accesses,
)

ENV = MemEnvironment(rand_latency_ns=37.6, seq_bw_bps=8e9, rand_bw_bps=4e9)


def profile(**kwargs):
    defaults = dict(name="p", instructions=1e6)
    defaults.update(kwargs)
    return WorkProfile(**defaults)


class TestMlpHelpers:
    def test_paper_a57_example(self):
        # Section 3.2: 128-entry ROB, 1 access / 6 instructions -> ~20 in
        # flight -> ~5.3 GB/s at 30 ns with 8 B accesses.
        mlp = outstanding_accesses(128, 6.0, mshrs=32)
        assert 20 <= mlp <= 22
        bw = mlp_limited_bandwidth_bps(20, 30.0, 8)
        assert bw == pytest.approx(5.33e9, rel=0.01)

    def test_mshr_cap(self):
        assert outstanding_accesses(1024, 1.0, mshrs=16) == 16

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            outstanding_accesses(0, 6, 32)
        with pytest.raises(ValueError):
            mlp_limited_bandwidth_bps(1, 0, 8)


class TestBuildCoreModel:
    def test_dispatch(self):
        assert isinstance(build_core_model(cortex_a57_cpu()), OutOfOrderCoreModel)
        assert isinstance(build_core_model(krait400_nmp()), OutOfOrderCoreModel)
        assert isinstance(build_core_model(cortex_a35_mondrian()), InOrderSimdCoreModel)


class TestOutOfOrderModel:
    def test_compute_bound_phase(self):
        model = OutOfOrderCoreModel(krait400_nmp())
        est = model.estimate(profile(instructions=3e6, dep_ilp=3.0), ENV)
        assert est.bound == "compute"
        # 3-wide at full ILP: 1e6 cycles at 1 GHz = 1 ms.
        assert est.time_ns == pytest.approx(1e6, rel=0.2)
        assert est.effective_ipc <= 3.0

    def test_dependency_limited_ipc(self):
        model = OutOfOrderCoreModel(krait400_nmp())
        fast = model.estimate(profile(dep_ilp=3.0), ENV)
        slow = model.estimate(profile(dep_ilp=1.0), ENV)
        assert slow.time_ns > fast.time_ns * 2

    def test_random_access_latency_bound(self):
        model = OutOfOrderCoreModel(krait400_nmp())
        est = model.estimate(
            profile(instructions=1e4, rand_reads=1e5, rand_access_b=64,
                    mem_parallelism=1.0),
            ENV,
        )
        assert est.bound in ("latency", "bandwidth")
        # One access in flight at 37.6 ns each.
        assert est.time_ns >= 1e5 * 37.6 * 0.9

    def test_mlp_scales_with_rob_window(self):
        # Same algorithmic parallelism: the A57's bigger window extracts
        # more overlap than the Krait's.
        p = profile(instructions=1e4, rand_reads=1e5, mem_parallelism=2.25)
        krait = OutOfOrderCoreModel(krait400_nmp()).estimate(p, ENV)
        a57 = OutOfOrderCoreModel(cortex_a57_cpu()).estimate(p, ENV)
        assert a57.memory_time_ns < krait.memory_time_ns

    def test_serialized_chains_not_scaled(self):
        # mem_parallelism == 1 means a serial chain; no window rescue.
        p = profile(instructions=1e3, rand_reads=1e4, mem_parallelism=1.0)
        krait = OutOfOrderCoreModel(krait400_nmp()).estimate(p, ENV)
        a57 = OutOfOrderCoreModel(cortex_a57_cpu()).estimate(p, ENV)
        assert a57.memory_time_ns == pytest.approx(krait.memory_time_ns)

    def test_sequential_bandwidth_bound(self):
        model = OutOfOrderCoreModel(krait400_nmp())
        est = model.estimate(profile(instructions=1e3, seq_read_b=8e6), ENV)
        assert est.bound == "bandwidth"
        assert est.time_ns == pytest.approx(1e6, rel=0.2)  # 8 MB at 8 GB/s

    def test_remote_fraction_raises_latency(self):
        env = MemEnvironment(
            rand_latency_ns=37.6, seq_bw_bps=8e9, rand_bw_bps=4e9,
            remote_extra_latency_ns=20.0,
        )
        model = OutOfOrderCoreModel(krait400_nmp())
        local = model.estimate(
            profile(rand_reads=1e5, mem_parallelism=1.0, remote_fraction=0.0), env
        )
        remote = model.estimate(
            profile(rand_reads=1e5, mem_parallelism=1.0, remote_fraction=1.0), env
        )
        assert remote.time_ns > local.time_ns


class TestInOrderSimdModel:
    def test_simd_collapses_vector_work(self):
        core = cortex_a35_mondrian()
        model = InOrderSimdCoreModel(core)
        scalar = model.estimate(
            profile(instructions=8e6, simd_ops=0, dep_ilp=1.0), ENV
        )
        simd = model.estimate(
            profile(instructions=8e6, simd_ops=8e6, simd_vectorizable=True,
                    dep_ilp=1.0),
            ENV,
        )
        assert simd.time_ns < scalar.time_ns / 4

    def test_simd_width_matters(self):
        wide = InOrderSimdCoreModel(cortex_a35_mondrian(1024))
        narrow = InOrderSimdCoreModel(cortex_a35_mondrian(128))
        p = profile(instructions=8e6, simd_ops=8e6, simd_vectorizable=True)
        assert wide.estimate(p, ENV).time_ns < narrow.estimate(p, ENV).time_ns

    def test_streaming_at_device_bandwidth(self):
        model = InOrderSimdCoreModel(cortex_a35_mondrian())
        est = model.estimate(profile(instructions=1e3, seq_read_b=8e6), ENV)
        assert est.time_ns == pytest.approx(1e6, rel=0.2)

    def test_random_access_penalized(self):
        # Random accesses stall the in-order pipe far more than streams.
        model = InOrderSimdCoreModel(cortex_a35_mondrian())
        stream = model.estimate(profile(instructions=1e4, seq_read_b=1.6e6), ENV)
        random = model.estimate(
            profile(instructions=1e4, rand_reads=1e5, rand_access_b=16,
                    mem_parallelism=1.0),
            ENV,
        )
        assert random.time_ns > stream.time_ns

    def test_partial_vectorization_scalar_remainder_dominates(self):
        model = InOrderSimdCoreModel(cortex_a35_mondrian())
        est = model.estimate(
            profile(instructions=10e6, simd_ops=5e6, simd_vectorizable=True,
                    dep_ilp=1.0),
            ENV,
        )
        # Scalar remainder: 5e6 instructions at ~1 IPC -> ~5e6 ns.
        assert est.time_ns >= 4e6


class TestCoreEstimateInvariants:
    @pytest.mark.parametrize("core", [cortex_a57_cpu(), krait400_nmp(), cortex_a35_mondrian()])
    def test_time_positive_and_components_consistent(self, core):
        model = build_core_model(core)
        est = model.estimate(
            profile(instructions=1e5, rand_reads=1e3, seq_read_b=1e5), ENV
        )
        assert est.time_ns > 0
        assert est.time_ns >= max(est.compute_time_ns, est.memory_time_ns) * 0.99
        assert est.bw_demand_bps > 0

    def test_zero_work(self):
        model = OutOfOrderCoreModel(krait400_nmp())
        est = model.estimate(profile(instructions=0), ENV)
        assert est.time_ns == 0
        assert est.bound == "idle"
