"""Shared test configuration.

The persistent result store is environment-activated
(``REPRO_STORE``), and ``common.active_store()`` reads the variable on
every call -- so a developer who exported it for their own warm cache
would otherwise have the *test suite* replaying (possibly stale)
persisted results instead of simulating, and polluting their personal
store with test entries.  Every test runs with the store environment
scrubbed; tests that want a store opt in explicitly (fixtures or
``monkeypatch.setenv``).
"""

import pytest

from repro.experiments import common


@pytest.fixture(scope="session", autouse=True)
def _no_ambient_result_store():
    # Session-scoped so it precedes *every* fixture, including the
    # class-scoped experiment fixtures that run simulations at setup
    # (a function-scoped monkeypatch would be applied after those).
    mp = pytest.MonkeyPatch()
    mp.delenv(common.STORE_ENV, raising=False)
    mp.delenv(common.STORE_MAX_BYTES_ENV, raising=False)
    yield
    mp.undo()
