"""Tests for address mapping and region layout."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.dram import HmcGeometry
from repro.mem import AddressMap, DramCoord, MemoryLayout


GEO = HmcGeometry()
AMAP = AddressMap(GEO)


class TestAddressMap:
    def test_vault_contiguity(self):
        cap = GEO.vault_capacity_b
        assert AMAP.vault_of(0) == 0
        assert AMAP.vault_of(cap - 1) == 0
        assert AMAP.vault_of(cap) == 1
        assert AMAP.vault_of(GEO.total_capacity_b - 1) == GEO.total_vaults - 1

    def test_stack_of(self):
        assert AMAP.stack_of(0) == 0
        assert AMAP.stack_of(GEO.stack_capacity_b) == 1

    def test_vault_base(self):
        assert AMAP.vault_base(0) == 0
        assert AMAP.vault_base(3) == 3 * GEO.vault_capacity_b
        with pytest.raises(ValueError):
            AMAP.vault_base(GEO.total_vaults)

    def test_decode_fields(self):
        c = AMAP.decode(0)
        assert c == DramCoord(stack=0, vault=0, bank=0, row=0, column=0)
        c = AMAP.decode(256)  # second row -> next bank (row-interleaved)
        assert c.bank == 1
        assert c.row == 0
        c = AMAP.decode(256 * 8)  # ninth row wraps banks
        assert c.bank == 0
        assert c.row == 1

    def test_column_offset(self):
        assert AMAP.decode(100).column == 100
        assert AMAP.decode(256 + 7).column == 7

    @given(st.integers(min_value=0, max_value=GEO.total_capacity_b - 1))
    @settings(max_examples=200)
    def test_roundtrip(self, addr):
        assert AMAP.encode(AMAP.decode(addr)) == addr

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            AMAP.decode(GEO.total_capacity_b)
        with pytest.raises(ValueError):
            AMAP.decode(-1)

    def test_row_identity(self):
        assert AMAP.same_row(0, 255)
        assert not AMAP.same_row(0, 256)
        assert AMAP.row_id(256) == AMAP.row_id(511)

    def test_encode_validates(self):
        with pytest.raises(ValueError):
            AMAP.encode(DramCoord(stack=0, vault=0, bank=99, row=0, column=0))
        with pytest.raises(ValueError):
            AMAP.encode(DramCoord(stack=0, vault=0, bank=0, row=0, column=256))


class TestMemoryLayout:
    def test_allocation_in_vault(self):
        layout = MemoryLayout(GEO)
        region = layout.allocate("rel", vault=5, size_b=1000)
        assert region.vault == 5
        assert region.base == AMAP.vault_base(5)
        assert region.size_b == 1000
        assert region.contains(region.base)
        assert not region.contains(region.end)

    def test_row_alignment(self):
        layout = MemoryLayout(GEO)
        layout.allocate("a", 0, 100)
        b = layout.allocate("b", 0, 100)
        assert b.base % GEO.row_size_b == 0
        assert b.base == 256

    def test_duplicate_name_rejected(self):
        layout = MemoryLayout(GEO)
        layout.allocate("a", 0, 100)
        with pytest.raises(ValueError):
            layout.allocate("a", 1, 100)

    def test_overflow(self):
        layout = MemoryLayout(GEO)
        with pytest.raises(MemoryError):
            layout.allocate("huge", 0, GEO.vault_capacity_b + 1)

    def test_free_bytes_decreases(self):
        layout = MemoryLayout(GEO)
        before = layout.free_bytes(0)
        layout.allocate("a", 0, 4096)
        assert layout.free_bytes(0) == before - 4096

    def test_striped_allocation(self):
        layout = MemoryLayout(GEO)
        regions = layout.allocate_striped("rel", 512)
        assert len(regions) == GEO.total_vaults
        assert all(r.vault == i for i, r in enumerate(regions))
        assert layout.get("rel/v3").vault == 3

    def test_lookup_and_contains(self):
        layout = MemoryLayout(GEO)
        layout.allocate("x", 2, 256)
        assert "x" in layout
        assert layout.get("x").name == "x"
        with pytest.raises(KeyError):
            layout.get("y")
        assert [r.name for r in layout.regions_in_vault(2)] == ["x"]

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            MemoryLayout(GEO).allocate("z", 0, 0)
