"""Telemetry-layer tests: spans, re-parenting, codec, metrics, goldens.

Covers the contracts the observability layer promises:

- span nesting and deterministic ids within one tracer;
- re-parenting across *both* process boundaries (the sweep/suite
  process pool and the supervised worker-fleet subprocesses);
- Chrome ``trace_event`` schema validity of every export;
- metrics-registry snapshot determinism across fresh interpreters
  (distinct hash seeds) through the canonical ``telemetry/v1`` codec;
- golden exports stay byte-identical with tracing ON -- the trace goes
  to its own file and stderr, never stdout.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import Scenario, Sweep
from repro.service.resilience import WorkerFleet
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    active_tracer,
    canonical_json,
    decode_snapshot,
    encode_snapshot,
    install_tracer,
    registry,
    runtime_snapshot,
    span,
    tracing,
    uninstall_tracer,
    validate_trace_events,
)
from repro.telemetry.trace import NOOP_SPAN

ROOT = Path(__file__).resolve().parents[1]
FAST = dict(model_scale=50.0, num_partitions=8)


@pytest.fixture
def tracer():
    tracer = install_tracer()
    yield tracer
    uninstall_tracer()


class TestSpans:
    def test_nesting_and_ids(self, tracer):
        with tracer.span("outer", category="t") as outer:
            with tracer.span("inner", category="t", depth=1) as inner:
                inner.set(rows=3)
        assert outer.span_id == 1 and outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.attrs == {"depth": 1, "rows": 3}
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert all(s.duration_ns >= 0 for s in tracer.spans)

    def test_module_guard_is_noop_without_tracer(self):
        assert active_tracer() is None
        with span("anything", category="t", x=1) as sp:
            sp.set(y=2)  # must not raise, must not allocate state
        assert sp is NOOP_SPAN

    def test_module_span_routes_to_installed_tracer(self, tracer):
        with span("routed", category="t"):
            pass
        assert [s.name for s in tracer.spans] == ["routed"]

    def test_tracing_scope_restores_previous(self, tracer):
        with tracing() as inner:
            assert active_tracer() is inner
        assert active_tracer() is tracer

    def test_adopt_renumbers_and_reparents(self, tracer):
        worker = Tracer()
        with worker.span("root", category="w"):
            with worker.span("child", category="w"):
                pass
        with tracer.span("parent", category="t") as parent:
            adopted = tracer.adopt(
                worker.to_dicts(), parent_id=tracer.current_span_id()
            )
        assert adopted == 2
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["root"].parent_id == parent.span_id
        assert by_name["child"].parent_id == by_name["root"].span_id
        # Renumbered into this tracer's id space: all distinct.
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids))

    def test_chrome_export_is_schema_valid(self, tracer, tmp_path):
        with tracer.span("outer", category="t", label="x"):
            with tracer.span("inner", category="t"):
                pass
        out = tmp_path / "trace.json"
        assert tracer.export_chrome(out) == 2
        document = json.loads(out.read_text())
        events = validate_trace_events(document)
        assert {e["name"] for e in events} == {"outer", "inner"}
        assert all(e["ph"] == "X" and e["dur"] >= 1 for e in events)

    def test_validate_rejects_malformed_events(self):
        good = {"name": "a", "cat": "t", "ph": "X", "ts": 1, "dur": 1,
                "pid": 1, "tid": 1, "args": {}}
        validate_trace_events([good])
        for corruption in (
            {"ph": "B"}, {"dur": 0}, {"ts": -5}, {"args": []},
            {"name": 7}, {"pid": True},
        ):
            with pytest.raises(ValueError):
                validate_trace_events([{**good, **corruption}])


class TestCrossProcess:
    def test_pool_worker_spans_reparent_under_sweep(self, tracer):
        sweep = Sweep(systems=("cpu",), workloads=("scan", "join"),
                      scales=(50.0,), num_partitions=(8,))
        sweep.run(jobs=2)
        names = [s.name for s in tracer.spans]
        sweep_span = tracer.find("sweep")[0]
        assert names.count("pool_worker") == 2
        for worker_span in tracer.find("pool_worker"):
            assert worker_span.parent_id == sweep_span.span_id
        # The worker's own task spans ride under its pool_worker root.
        worker_ids = {s.span_id for s in tracer.find("pool_worker")}
        assert all(s.parent_id in worker_ids for s in tracer.find("task"))

    def test_fleet_worker_spans_cross_the_subprocess_boundary(self, tracer):
        scenarios = [Scenario("cpu", "scan", **FAST),
                     Scenario("cpu", "join", **FAST)]
        with WorkerFleet(1, task_timeout=120.0) as fleet:
            records, _, degraded = fleet.evaluate(scenarios)
        assert degraded == 0 and len(records) == 2
        batch = tracer.find("fleet_batch")[0]
        workers = tracer.find("fleet_worker")
        assert len(workers) == 2
        assert all(w.parent_id == batch.span_id for w in workers)
        assert all(w.attrs["pid"] != os.getpid() for w in workers)

    def test_export_after_adoption_is_valid(self, tracer, tmp_path):
        sweep = Sweep(systems=("cpu",), workloads=("scan", "join"),
                      scales=(50.0,), num_partitions=(8,))
        sweep.run(jobs=2)
        out = tmp_path / "trace.json"
        count = tracer.export_chrome(out)
        events = validate_trace_events(json.loads(out.read_text()))
        assert len(events) == count >= 3


class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2)
        reg.gauge("depth").set(4.5)
        hist = reg.histogram("size")
        for value in (0.5, 5.0, 5000.0):
            hist.observe(value)
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["gauges"]["depth"] == 4.5
        assert snap["histograms"]["size"]["count"] == 3
        assert snap["histograms"]["size"]["min"] == 0.5
        assert sum(snap["histograms"]["size"]["buckets"]) == 3

    def test_type_collision_and_negative_inc_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_runtime_snapshot_shape(self):
        snap = runtime_snapshot()
        assert set(snap) == {"cache", "metrics", "store"}
        assert set(snap["metrics"]) == {"counters", "gauges", "histograms"}

    def test_codec_roundtrip_and_version_check(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        text = encode_snapshot(reg.snapshot())
        assert text == canonical_json(
            {"schema": "telemetry/v1", "snapshot": reg.snapshot()}
        )
        assert decode_snapshot(text) == reg.snapshot()
        with pytest.raises(ValueError, match="telemetry/v1"):
            decode_snapshot('{"schema": "telemetry/v9", "snapshot": {}}')

    def test_snapshot_bytes_identical_across_interpreters(self):
        probe = (
            "from repro.telemetry import MetricsRegistry, encode_snapshot\n"
            "reg = MetricsRegistry()\n"
            "for name in ('zeta', 'alpha', 'mid'):\n"
            "    reg.counter(name).inc(3)\n"
            "reg.gauge('g').set(1.25)\n"
            "for v in (0.002, 7.0, 7.0, 900.0):\n"
            "    reg.histogram('h').observe(v)\n"
            "print(encode_snapshot(reg.snapshot()))\n"
        )
        outputs = []
        for hash_seed in ("0", "12345"):
            env = dict(os.environ,
                       PYTHONPATH=str(ROOT / "src"),
                       PYTHONHASHSEED=hash_seed)
            result = subprocess.run(
                [sys.executable, "-c", probe], env=env,
                capture_output=True, text=True, check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        decode_snapshot(outputs[0])  # and it is valid telemetry/v1

    def test_fault_metrics_published_on_finalize(self):
        before = registry().snapshot()["counters"].get("faults.sessions", 0)
        from repro.api.spec import as_spec

        system = as_spec("mondrian").with_faults(seed=7, drop_prob=0.2)
        Scenario(system, "join", model_scale=50.0, num_partitions=8).records()
        after = registry().snapshot()["counters"].get("faults.sessions", 0)
        assert after > before


class TestServiceStats:
    def test_daemon_stats_carry_metrics_snapshot(self):
        from repro.service.daemon import EvaluationDaemon

        daemon = EvaluationDaemon()
        try:
            stats = daemon.dispatch({"verb": "stats"})
        finally:
            daemon.scheduler.close()
        assert set(stats["metrics"]) == {"counters", "gauges", "histograms"}
        # The whole stats document round-trips through the v1 codec.
        assert decode_snapshot(encode_snapshot(stats)) == stats


class TestGoldensWithTracingOn:
    def test_sweep_smoke_stdout_identical_with_trace(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=str(ROOT / "src"), REPRO_STORE="")
        cmd = [sys.executable, "-m", "repro.api",
               "--sweep", str(ROOT / "tests/data/sweep_smoke.json"),
               "--json", "-"]
        plain = subprocess.run(cmd, env=env, capture_output=True,
                               text=True, check=True)
        trace_file = tmp_path / "trace.json"
        traced = subprocess.run(cmd + ["--trace", str(trace_file)], env=env,
                                capture_output=True, text=True, check=True)
        assert traced.stdout == plain.stdout  # byte-identical export
        golden = (ROOT / "tests/data/sweep_smoke_golden.json").read_text()
        assert plain.stdout == golden
        events = validate_trace_events(json.loads(trace_file.read_text()))
        names = {e["name"] for e in events}
        # Operator workloads produce sweep/task/shuffle spans; plan and
        # stage spans belong to the pipeline-query workloads.
        assert {"sweep", "task", "shuffle"} <= names
