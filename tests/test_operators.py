"""Functional-correctness and cost-record tests for the four operators,
across all algorithmic variants, verified against the oracles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics.workload import (
    make_groupby_workload,
    make_join_workload,
    make_scan_workload,
    make_sort_workload,
)
from repro.operators import (
    OperatorVariant,
    PHASE_DISTRIBUTE,
    PHASE_HISTOGRAM,
    PHASE_PROBE,
    run_groupby,
    run_join,
    run_scan,
    run_sort,
)
from repro.operators.oracle import (
    oracle_groupby,
    oracle_join,
    oracle_scan,
    oracle_sort,
)

P = 8

VARIANTS = {
    "cpu": OperatorVariant(
        radix_bits=16, probe_algorithm="hash", permutable=False, simd=False,
        num_partitions=P, local_sort="quicksort",
    ),
    "nmp-rand": OperatorVariant(
        radix_bits=6, probe_algorithm="hash", permutable=False, simd=False,
        num_partitions=P,
    ),
    "nmp-seq": OperatorVariant(
        radix_bits=6, probe_algorithm="sort", permutable=False, simd=False,
        num_partitions=P,
    ),
    "nmp-perm": OperatorVariant(
        radix_bits=6, probe_algorithm="hash", permutable=True, simd=False,
        num_partitions=P,
    ),
    "mondrian": OperatorVariant(
        radix_bits=6, probe_algorithm="sort", permutable=True, simd=True,
        num_partitions=P,
    ),
}


class TestScan:
    @pytest.mark.parametrize("variant", VARIANTS.values(), ids=VARIANTS.keys())
    def test_matches_oracle(self, variant):
        w = make_scan_workload(3000, P, seed=1)
        r = run_scan(w, variant)
        assert (r.output.matches, r.output.payload_sum) == oracle_scan(w)

    def test_no_partitioning_phase(self):
        w = make_scan_workload(1000, P, seed=2)
        r = run_scan(w, VARIANTS["mondrian"])
        assert len(r.phases) == 1
        assert r.phases[0].category == PHASE_PROBE
        assert not r.partitioning_phases

    def test_streaming_cost_shape(self):
        w = make_scan_workload(1000, P, seed=2)
        r = run_scan(w, VARIANTS["cpu"])
        phase = r.phases[0]
        assert phase.seq_read_b == 1000 * 16
        assert phase.rand_reads == 0
        assert phase.shuffle_b == 0

    def test_model_scale_scales_costs_not_output(self):
        w = make_scan_workload(1000, P, seed=3)
        base = run_scan(w, VARIANTS["cpu"], model_scale=1.0)
        scaled = run_scan(w, VARIANTS["cpu"], model_scale=10.0)
        assert scaled.output == base.output
        assert scaled.phases[0].instructions == pytest.approx(
            base.phases[0].instructions * 10
        )


class TestJoin:
    @pytest.mark.parametrize("variant", VARIANTS.values(), ids=VARIANTS.keys())
    def test_matches_oracle(self, variant):
        w = make_join_workload(1000, 4000, P, seed=4)
        r = run_join(w, variant)
        assert (r.output.matches, r.output.checksum) == oracle_join(w)

    def test_foreign_key_all_matched(self):
        w = make_join_workload(500, 2000, P, seed=5)
        r = run_join(w, VARIANTS["mondrian"])
        assert r.output.matches == 2000

    def test_phase_structure_hash(self):
        w = make_join_workload(500, 2000, P, seed=6)
        r = run_join(w, VARIANTS["cpu"])
        names = [p.name for p in r.phases]
        assert names == [
            "R-histogram", "R-distribute", "S-histogram", "S-distribute",
            "hash-build", "hash-probe",
        ]

    def test_phase_structure_sort(self):
        w = make_join_workload(500, 2000, P, seed=6)
        r = run_join(w, VARIANTS["mondrian"])
        probe_names = [p.name for p in r.probe_phases]
        assert probe_names == ["sort-R", "sort-S", "merge-join"]

    def test_permutable_distribute_is_streaming(self):
        w = make_join_workload(500, 2000, P, seed=7)
        perm = run_join(w, VARIANTS["nmp-perm"]).phase("R-distribute")
        addr = run_join(w, VARIANTS["nmp-rand"]).phase("R-distribute")
        assert perm.permutable_writes and not addr.permutable_writes
        assert perm.instructions < addr.instructions  # simpler code
        assert addr.rand_writes > 0 and perm.rand_writes == 0

    def test_sort_probe_sequential_only(self):
        w = make_join_workload(500, 2000, P, seed=8)
        r = run_join(w, VARIANTS["nmp-seq"])
        for phase in r.probe_phases:
            assert phase.rand_reads == 0 and phase.rand_writes == 0

    def test_hash_probe_randomness_recorded(self):
        w = make_join_workload(500, 2000, P, seed=8)
        probe = run_join(w, VARIANTS["nmp-rand"]).phase("hash-probe")
        assert probe.rand_reads >= 2000  # >= one access per S tuple

    def test_simd_flags(self):
        w = make_join_workload(500, 2000, P, seed=9)
        mon = run_join(w, VARIANTS["mondrian"])
        assert all(p.simd_vectorizable for p in mon.probe_phases)
        nmp = run_join(w, VARIANTS["nmp-seq"])
        assert not any(p.simd_vectorizable for p in nmp.probe_phases)

    def test_model_scale_affects_pass_counts(self):
        w = make_join_workload(1000, 4000, P, seed=10)
        small = run_join(w, VARIANTS["nmp-seq"], model_scale=1.0)
        big = run_join(w, VARIANTS["nmp-seq"], model_scale=1000.0)
        # n log n: pass count grows, so instructions grow superlinearly.
        assert big.phase("sort-S").instructions > 1000 * small.phase("sort-S").instructions


class TestGroupBy:
    @pytest.mark.parametrize(
        "variant", [VARIANTS["cpu"], VARIANTS["nmp-rand"], VARIANTS["nmp-seq"], VARIANTS["mondrian"]],
        ids=["cpu", "nmp-rand", "nmp-seq", "mondrian"],
    )
    def test_matches_oracle(self, variant):
        w = make_groupby_workload(3000, P, seed=11)
        r = run_groupby(w, variant)
        oracle = oracle_groupby(w)
        assert set(r.output.groups) == set(oracle)
        for key in oracle:
            for agg in ("count", "sum", "min", "max", "avg", "sumsq"):
                got = r.output.groups[key][agg]
                want = oracle[key][agg]
                assert got == pytest.approx(want, rel=1e-9), (key, agg)

    def test_six_aggregates_present(self):
        w = make_groupby_workload(500, P, seed=12)
        r = run_groupby(w, VARIANTS["mondrian"])
        sample = next(iter(r.output.groups.values()))
        assert set(sample) == {"count", "sum", "min", "max", "avg", "sumsq"}

    def test_average_group_size_metadata(self):
        w = make_groupby_workload(4000, P, avg_group_size=4.0, seed=13)
        r = run_groupby(w, VARIANTS["cpu"])
        assert 2.5 < r.metadata["tuples"] / r.metadata["groups"] < 6.0

    def test_hash_probe_random_sort_probe_sequential(self):
        w = make_groupby_workload(1000, P, seed=14)
        hash_r = run_groupby(w, VARIANTS["nmp-rand"])
        sort_r = run_groupby(w, VARIANTS["nmp-seq"])
        assert any(p.rand_reads > 0 for p in hash_r.probe_phases)
        assert all(p.rand_reads == 0 for p in sort_r.probe_phases)


class TestSort:
    @pytest.mark.parametrize("variant", VARIANTS.values(), ids=VARIANTS.keys())
    def test_globally_sorted(self, variant):
        w = make_sort_workload(3000, P, seed=15)
        r = run_sort(w, variant)
        assert r.output.is_sorted()
        assert r.output.multiset_equal(oracle_sort(w))

    def test_quicksort_vs_mergesort_selection(self):
        w = make_sort_workload(1000, P, seed=16)
        cpu = run_sort(w, VARIANTS["cpu"])
        nmp = run_sort(w, VARIANTS["nmp-seq"])
        assert cpu.probe_phases[0].name == "quicksort"
        assert nmp.probe_phases[0].name == "mergesort"

    def test_partitioning_present(self):
        w = make_sort_workload(1000, P, seed=17)
        r = run_sort(w, VARIANTS["mondrian"])
        cats = [p.category for p in r.phases]
        assert PHASE_HISTOGRAM in cats and PHASE_DISTRIBUTE in cats

    @given(st.integers(50, 2000), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_property_sorted_any_size(self, n, parts):
        w = make_sort_workload(n, parts, seed=n)
        r = run_sort(w, VARIANTS["mondrian"])
        assert r.output.is_sorted()
        assert len(r.output) == n


class TestPhaseCostInvariants:
    def test_total_instructions_positive(self):
        w = make_join_workload(500, 2000, P, seed=18)
        for variant in VARIANTS.values():
            r = run_join(w, variant)
            assert r.total_instructions > 0
            for phase in r.phases:
                assert phase.instructions >= 0
                assert phase.total_bytes >= 0

    def test_phase_lookup(self):
        w = make_scan_workload(100, P, seed=19)
        r = run_scan(w, VARIANTS["cpu"])
        assert r.phase("scan").name == "scan"
        with pytest.raises(KeyError):
            r.phase("nope")

    def test_scaled_phase_cost(self):
        w = make_scan_workload(100, P, seed=20)
        phase = run_scan(w, VARIANTS["cpu"]).phases[0]
        doubled = phase.scaled(2.0)
        assert doubled.instructions == phase.instructions * 2
        assert doubled.seq_read_b == phase.seq_read_b * 2
        with pytest.raises(ValueError):
            phase.scaled(-1)
