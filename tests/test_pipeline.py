"""Tests for the query-pipeline subsystem.

Covers the three properties the pipeline must guarantee:

1. **Functional fidelity** -- a chained plan produces exactly the output
   an independent numpy oracle (and the standalone operators) computes.
2. **Cost fidelity** -- per-stage phase lists concatenate into the
   pipeline totals with nothing added or lost, and stage phases equal
   the wrapped operator's phases.
3. **Cross-machine behaviour** -- NMP/Mondrian keep a positive
   end-to-end speedup over the CPU on the FK-join pipeline.
"""

import numpy as np
import pytest

from repro.analytics.tuples import Relation
from repro.analytics.workload import JoinWorkload, split_relation
from repro.operators.join import run_join
from repro.pipeline import (
    FilterStage,
    GroupByStage,
    JoinStage,
    PartitionStage,
    QueryPlan,
    ScanStage,
    SortStage,
    bottleneck_report,
    build_query,
    comparison_table,
    fk_join_aggregate,
    pipeline_speedup,
    skewed_partition_join,
    sort_then_scan,
    stage_breakdown_table,
)
from repro.systems import build_system

PARTITIONS = 8
SCALE = 50.0


@pytest.fixture(scope="module")
def fk_plan():
    return fk_join_aggregate(n_r=500, n_s=2_000, num_partitions=PARTITIONS, seed=5)


@pytest.fixture(scope="module")
def machines():
    return {name: build_system(name) for name in ("cpu", "nmp-perm", "mondrian")}


@pytest.fixture(scope="module")
def fk_perfs(fk_plan, machines):
    return {
        name: m.run_pipeline(fk_plan, scale_factor=SCALE)
        for name, m in machines.items()
    }


def _reference_spend(plan):
    """Independent numpy oracle for the fk-join-aggregate query."""
    users = plan.tables["users"]
    events = plan.tables["events"]
    lookup = dict(zip(users.keys.tolist(), users.payloads.tolist()))
    spend = {}
    for k, p in zip(events.keys.tolist(), events.payloads.tolist()):
        spend[k] = spend.get(k, 0) + lookup[k] + p
    keys = np.array(sorted(spend), dtype=np.uint64)
    payloads = np.array([spend[int(k)] for k in keys], dtype=np.uint64)
    return Relation.from_arrays(keys, payloads, "expected")


class TestFunctionalFidelity:
    def test_chained_plan_matches_numpy_oracle(self, fk_plan, machines):
        run = fk_plan.execute(
            machines["mondrian"].variant(PARTITIONS), model_scale=SCALE
        )
        expected = _reference_spend(fk_plan)
        assert np.array_equal(run.output.keys, expected.keys)
        assert np.array_equal(run.output.payloads, expected.payloads)
        assert run.output.is_sorted()

    def test_same_output_on_every_machine(self, fk_plan, machines):
        outputs = [
            fk_plan.execute(m.variant(PARTITIONS), model_scale=SCALE).output
            for m in machines.values()
        ]
        assert all(np.array_equal(outputs[0].data, o.data) for o in outputs[1:])

    def test_join_stage_phases_match_standalone_operator(self, fk_plan, machines):
        variant = machines["cpu"].variant(PARTITIONS)
        run = fk_plan.execute(variant, model_scale=SCALE)
        workload = JoinWorkload(
            r_partitions=split_relation(fk_plan.tables["users"], PARTITIONS),
            s_partitions=split_relation(fk_plan.tables["events"], PARTITIONS),
            key_space_bits=fk_plan.key_space_bits,
        )
        standalone = run_join(workload, variant, model_scale=SCALE)
        stage_phases = run.stages[0].phases
        assert [p.name for p in stage_phases] == [p.name for p in standalone.phases]
        assert sum(p.instructions for p in stage_phases) == pytest.approx(
            standalone.total_instructions
        )

    def test_sort_then_scan_finds_all_hits(self, machines):
        plan = sort_then_scan(n=2_000, num_partitions=PARTITIONS, seed=3)
        run = plan.execute(machines["mondrian"].variant(PARTITIONS), model_scale=SCALE)
        sorted_stage = run.stage("sort:sorted_events")
        assert sorted_stage.relation.is_sorted()
        hits = run.output
        key = plan.stages[-1].key
        assert len(hits) >= 1
        assert np.all(hits.keys == np.uint64(key))
        expected = int(np.count_nonzero(plan.tables["events"].keys == np.uint64(key)))
        assert len(hits) == expected

    def test_skewed_partition_join_rebalances(self, machines):
        plan = skewed_partition_join(
            n_r=500, n_s=2_000, num_partitions=PARTITIONS, seed=3
        )
        run = plan.execute(machines["mondrian"].variant(PARTITIONS), model_scale=SCALE)
        meta = run.stages[0].metadata
        assert meta["rebalanced"]
        assert meta["imbalance_after"] <= meta["imbalance_before"]
        assert len(run.output) == 2_000  # FK: every event joins

    def test_filter_stage_selectivity(self, machines):
        rng = np.random.default_rng(0)
        rel = Relation.from_arrays(
            rng.integers(0, 1 << 32, 1000, dtype=np.uint64),
            rng.integers(0, 1 << 32, 1000, dtype=np.uint64),
            "t",
        )
        plan = QueryPlan(
            name="filter-only",
            tables={"t": rel},
            stages=[FilterStage("t", "kept", predicate=lambda k: k % 2 == 0)],
            num_partitions=PARTITIONS,
        )
        run = plan.execute(machines["cpu"].variant(PARTITIONS))
        assert np.all(run.output.keys % 2 == 0)
        assert len(run.output) == int(np.count_nonzero(rel.keys % 2 == 0))


class TestCostFidelity:
    def test_phase_counts_sum_across_stages(self, fk_plan, machines):
        run = fk_plan.execute(machines["cpu"].variant(PARTITIONS), model_scale=SCALE)
        assert len(run.phases) == sum(len(s.phases) for s in run.stages)
        assert run.total_instructions == pytest.approx(
            sum(p.instructions for p in run.phases)
        )
        # join (2x partition + probe) + groupby + sort all contribute
        assert len(run.stages) == 3
        assert all(s.phases for s in run.stages)

    def test_pipeline_totals_are_stage_sums(self, fk_perfs):
        for perf in fk_perfs.values():
            assert perf.runtime_s == pytest.approx(
                sum(s.runtime_s for s in perf.stages)
            )
            assert perf.energy_j == pytest.approx(
                sum(s.energy_j for s in perf.stages)
            )
            assert perf.energy.total_j == pytest.approx(perf.energy_j)

    def test_time_fractions_normalized(self, fk_perfs):
        for perf in fk_perfs.values():
            assert sum(perf.time_fractions().values()) == pytest.approx(1.0)

    def test_bottleneck_is_slowest_stage(self, fk_perfs):
        perf = fk_perfs["cpu"]
        assert perf.bottleneck().runtime_s == max(s.runtime_s for s in perf.stages)


class TestCrossMachine:
    def test_nmp_speedup_positive_on_fk_join(self, fk_perfs):
        assert pipeline_speedup(fk_perfs["cpu"], fk_perfs["mondrian"]) > 1.0
        assert pipeline_speedup(fk_perfs["cpu"], fk_perfs["nmp-perm"]) > 1.0

    def test_mondrian_less_energy_than_cpu(self, fk_perfs):
        assert fk_perfs["mondrian"].energy_j < fk_perfs["cpu"].energy_j

    def test_reports_render(self, fk_perfs):
        table = stage_breakdown_table(fk_perfs["mondrian"])
        assert "TOTAL" in table and "join:enriched" in table
        line = bottleneck_report(fk_perfs["mondrian"])
        assert "bottleneck" in line and "mondrian" in line
        comp = comparison_table(fk_perfs, baseline="cpu")
        assert "1.0x" in comp


class TestPlanValidation:
    def test_missing_input_table_rejected(self):
        with pytest.raises(ValueError, match="before any stage"):
            QueryPlan(
                name="bad",
                tables={},
                stages=[SortStage("nope", "out")],
                num_partitions=2,
            )

    def test_duplicate_output_rejected(self):
        rel = Relation.from_pairs([(1, 1)], "t")
        with pytest.raises(ValueError, match="produced twice"):
            QueryPlan(
                name="bad",
                tables={"t": rel},
                stages=[SortStage("t", "out"), SortStage("out", "out")],
                num_partitions=2,
            )

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            QueryPlan(name="bad", tables={}, stages=[], num_partitions=2)

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            GroupByStage("a", "b", aggregate="median")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="partitioning scheme"):
            PartitionStage("a", "b", scheme="diagonal")

    def test_skew_aware_requires_low_bits(self):
        with pytest.raises(ValueError, match="low-order-bit"):
            PartitionStage("a", "b", scheme="high", skew_aware=True)

    def test_unknown_query_name(self):
        with pytest.raises(KeyError, match="unknown query"):
            build_query("cross-product")

    def test_scan_stage_requires_valid_scale(self, machines):
        plan = sort_then_scan(n=200, num_partitions=2, seed=1)
        with pytest.raises(ValueError, match="scale factor"):
            machines["cpu"].run_pipeline(plan, scale_factor=0.0)


class TestExperiment:
    def test_pipeline_queries_driver(self):
        from repro.experiments import pipeline_queries

        out = pipeline_queries.run(scale=SCALE, num_partitions=PARTITIONS)
        assert set(out["speedups"]) == {
            "fk-join-aggregate",
            "sort-then-scan",
            "skewed-partition-join",
        }
        for query, series in out["speedups"].items():
            assert series["cpu"] == pytest.approx(1.0)
            for system in ("nmp-perm", "mondrian"):
                assert series[system] > 1.0, (query, system)
        # Per-stage breakdowns for every query on every machine.
        for query in out["perfs"]:
            for system in ("cpu", "nmp-perm", "mondrian"):
                assert out["perfs"][query][system].stages
        assert "Pipeline speedup vs CPU" in out["table"]

    def test_run_all_pipelines_flag(self, capsys):
        from repro.experiments import run_all

        parser = run_all.build_parser()
        args = parser.parse_args(["--pipelines", "--fast"])
        assert args.pipelines and args.fast
