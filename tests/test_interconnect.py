"""Tests for the mesh NoC, SerDes links and the two topologies."""

import pytest

from repro.config.dram import HmcGeometry
from repro.config.energy import default_energy_config
from repro.config.interconnect import default_interconnect_config
from repro.interconnect import (
    FullyConnectedTopology,
    MeshNoc,
    SerdesLink,
    StarTopology,
    build_topology,
)

GEO = HmcGeometry()
ICFG = default_interconnect_config()
ECFG = default_energy_config()


class TestMeshNoc:
    def test_4x4_geometry(self):
        mesh = MeshNoc(16, ICFG)
        assert mesh.side == 4
        assert mesh.num_tiles == 16

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            MeshNoc(15, ICFG)

    def test_hops_manhattan(self):
        mesh = MeshNoc(16, ICFG)
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3
        assert mesh.hops(0, 15) == 6  # (0,0) -> (3,3)
        assert mesh.hops(5, 6) == 1

    def test_hops_symmetric(self):
        mesh = MeshNoc(16, ICFG)
        for a in range(16):
            for b in range(16):
                assert mesh.hops(a, b) == mesh.hops(b, a)

    def test_mean_hops(self):
        mesh = MeshNoc(16, ICFG)
        # 4x4 mesh uniform traffic: mean one-dimension distance = 1.25.
        assert mesh.mean_hops() == pytest.approx(2.5)

    def test_latency_includes_serialization(self):
        mesh = MeshNoc(16, ICFG)
        one_flit = mesh.latency_ns(0, 1, 16)
        two_flits = mesh.latency_ns(0, 1, 32)
        assert two_flits > one_flit

    def test_transfer_energy(self):
        mesh = MeshNoc(16, ICFG)
        j = mesh.transfer_energy_j(0, 15, 64)
        # 64 B x 8 bits x 6 hops x 1 mm x 0.04 pJ.
        assert j == pytest.approx(64 * 8 * 6 * 0.04e-12)
        assert mesh.transfer_energy_j(0, 0, 64) == 0.0

    def test_tile_bounds(self):
        with pytest.raises(ValueError):
            MeshNoc(16, ICFG).hops(0, 16)


class TestSerdesLink:
    def test_bandwidth(self):
        link = SerdesLink(ICFG, ECFG)
        assert link.bw_bps_per_dir == pytest.approx(20e9)

    def test_transfer_time(self):
        link = SerdesLink(ICFG, ECFG)
        assert link.transfer_ns(20) == pytest.approx(1.0)
        assert link.transfer_ns(0) == 0.0

    def test_busy_energy(self):
        link = SerdesLink(ICFG, ECFG)
        assert link.busy_energy_j(1) == pytest.approx(8 * 3e-12)

    def test_idle_energy_accrues_with_time(self):
        link = SerdesLink(ICFG, ECFG)
        one_s = link.idle_energy_j(1.0)
        assert one_s > 0
        assert link.idle_energy_j(2.0) == pytest.approx(2 * one_s)
        assert link.idle_energy_j(0.0) == 0.0

    def test_rejects_negative(self):
        link = SerdesLink(ICFG, ECFG)
        with pytest.raises(ValueError):
            link.transfer_ns(-1)
        with pytest.raises(ValueError):
            link.idle_energy_j(-1)


class TestStarTopology:
    def make(self):
        return StarTopology(GEO, ICFG, ECFG)

    def test_link_count(self):
        assert self.make().num_serdes_links == 4

    def test_cpu_access_single_crossing(self):
        route = self.make().cpu_access_route(17)
        assert route.serdes_crossings == 1

    def test_data_movement_double_crossing(self):
        # vault-to-vault movement round-trips via the CPU hub.
        route = self.make().route(0, 40)
        assert route.serdes_crossings == 2

    def test_shuffle_egress_halved(self):
        topo = self.make()
        assert topo.shuffle_egress_bw_bps() == pytest.approx(4 * 20e9 / 2)


class TestFullyConnectedTopology:
    def make(self):
        return FullyConnectedTopology(GEO, ICFG, ECFG)

    def test_link_count(self):
        assert self.make().num_serdes_links == 6  # C(4,2)

    def test_vault_local_route_free(self):
        route = self.make().route(5, 5)
        assert route.is_vault_local
        assert route.serdes_crossings == 0
        assert route.mesh_hops == 0

    def test_intra_stack_uses_mesh_only(self):
        route = self.make().route(0, 5)
        assert route.serdes_crossings == 0
        assert route.mesh_hops > 0

    def test_cross_stack_single_crossing(self):
        route = self.make().route(0, 16)
        assert route.serdes_crossings == 1

    def test_shuffle_egress(self):
        # 3 egress links x 20 GB/s / (3/4 remote fraction) = 80 GB/s.
        assert self.make().shuffle_egress_bw_bps() == pytest.approx(80e9)

    def test_message_latency_grows_with_crossings(self):
        topo = self.make()
        local = topo.message_latency_ns(topo.route(0, 1), 64)
        remote = topo.message_latency_ns(topo.route(0, 16), 64)
        assert remote > local

    def test_message_energy_components(self):
        topo = self.make()
        local = topo.message_energy_j(topo.route(0, 1), 64)
        remote = topo.message_energy_j(topo.route(0, 16), 64)
        assert remote > local > 0


class TestBuildTopology:
    def test_dispatch(self):
        assert isinstance(build_topology("star", GEO, ICFG, ECFG), StarTopology)
        assert isinstance(
            build_topology("fully-connected", GEO, ICFG, ECFG), FullyConnectedTopology
        )

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_topology("ring", GEO, ICFG, ECFG)

    def test_vault_bounds(self):
        topo = build_topology("fully-connected", GEO, ICFG, ECFG)
        with pytest.raises(ValueError):
            topo.route(0, 64)
