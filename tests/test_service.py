"""Tests for the evaluation service: the content-addressed store
(digest stability, atomicity, corruption tolerance, LRU eviction,
concurrent writers), the SystemResult codec, the store tier under
``run_cached_result``, the batching scheduler, the serving daemon, and
the fresh-process warm-store acceptance path."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import Scenario, Sweep, SystemSpec
from repro.experiments import common
from repro.service import (
    BatchScheduler,
    ResultStore,
    ServiceClient,
    ServiceError,
    digest_payload,
    serve_background,
)
from repro.service.codec import result_from_document, result_to_document
from repro.service.store import canonical_json

ROOT = Path(__file__).resolve().parents[1]
SMOKE_SPEC = ROOT / "tests" / "data" / "sweep_smoke.json"
SMOKE_GOLDEN = ROOT / "tests" / "data" / "sweep_smoke_golden.json"

#: Small, fast scenario parameters shared across the module.
FAST = dict(model_scale=50.0, num_partitions=8)


@pytest.fixture(autouse=True)
def isolated_store_state(monkeypatch):
    """Every test starts without a persistent tier and with cold caches."""
    monkeypatch.delenv(common.STORE_ENV, raising=False)
    monkeypatch.delenv(common.STORE_MAX_BYTES_ENV, raising=False)
    common.configure_store(None)
    common.clear_caches()
    yield
    common.configure_store(None)
    common.clear_caches()
    common.set_cache_enabled(True)


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------


class TestDigests:
    def test_digest_stable_across_dict_ordering(self):
        a = {"operator": "join", "seed": 17, "system": {"preset": "cpu"}}
        b = {"system": {"preset": "cpu"}, "seed": 17, "operator": "join"}
        assert digest_payload(a) == digest_payload(b)
        # Nested ordering too.
        a = {"spec": {"base": "mondrian", "num_cores": 32, "topology": "star"}}
        b = {"spec": {"topology": "star", "base": "mondrian", "num_cores": 32}}
        assert canonical_json(a) == canonical_json(b)
        assert digest_payload(a) == digest_payload(b)

    def test_digest_differs_on_content(self):
        base = {"operator": "join", "seed": 17}
        assert digest_payload(base) != digest_payload({**base, "seed": 18})

    def test_preset_and_no_override_spec_share_a_digest(self):
        bare = common.result_store_payload("cpu", "scan", 50.0, 17, 8)
        spec = common.result_store_payload(SystemSpec("cpu"), "scan", 50.0, 17, 8)
        assert digest_payload(bare) == digest_payload(spec)

    def test_spec_overrides_change_the_digest(self):
        plain = common.result_store_payload(SystemSpec("mondrian"), "scan", 50.0, 17, 8)
        custom = common.result_store_payload(
            SystemSpec("mondrian").with_cores(32), "scan", 50.0, 17, 8
        )
        assert digest_payload(plain) != digest_payload(custom)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = digest_payload({"k": 1})
        store.put(digest, {"value": [1, 2, 3]})
        assert store.get(digest) == {"value": [1, 2, 3]}
        assert store.stats()["hits"] == 1
        assert store.stats()["entries"] == 1

    def test_miss_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.stats()["misses"] == 1

    def test_contains_does_not_touch_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = digest_payload({"k": 1})
        assert not store.contains(digest)
        store.put(digest, {"v": 1})
        assert store.contains(digest)
        assert store.stats()["hits"] == 0 and store.stats()["misses"] == 0

    def test_corrupt_entry_is_a_miss_and_healed(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = digest_payload({"k": 1})
        path = store.put(digest, {"v": 1})
        path.write_text('{"v": 1')  # truncated JSON
        assert store.get(digest) is None  # miss, not a crash
        assert not path.exists()  # corrupt entry removed
        store.put(digest, {"v": 2})  # healed by the next put
        assert store.get(digest) == {"v": 2}

    def test_corrupt_index_is_rebuilt(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = digest_payload({"k": 1})
        store.put(digest, {"v": 1})
        (tmp_path / "index.json").write_text("not json at all")
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.get(digest) == {"v": 1}

    def test_lru_eviction_order(self, tmp_path):
        digests = [digest_payload({"k": i}) for i in range(4)]
        payload = {"pad": "x" * 64}
        size = len(json.dumps(payload, sort_keys=True))
        store = ResultStore(tmp_path, max_bytes=3 * size)
        for d in digests[:3]:
            store.put(d, payload)
        store.get(digests[0])  # touch the oldest: now most recent
        store.put(digests[3], payload)  # over budget -> evict LRU
        assert store.get(digests[1]) is None  # the least recently used
        assert store.get(digests[0]) == payload  # survived via the touch
        assert store.get(digests[3]) == payload
        assert store.stats()["evictions"] == 1

    def test_oversized_entry_survives_alone(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=8)
        digest = digest_payload({"k": 1})
        store.put(digest, {"pad": "y" * 100})
        assert store.get(digest) is not None

    def test_entry_adopted_via_get_counts_its_real_size(self, tmp_path):
        # A second handle (stand-in for a pool worker) writes an entry;
        # the first handle reads it -- the budget must see its real
        # size, not zero, or max_bytes stores silently overgrow.
        a = ResultStore(tmp_path)
        b = ResultStore(tmp_path)
        digest = digest_payload({"k": 1})
        b.put(digest, {"pad": "x" * 128})
        before = a.total_bytes()
        assert a.get(digest) is not None
        assert a.total_bytes() >= before + 128

    def test_concurrent_stats_and_puts_one_handle(self, tmp_path):
        # The daemon answers `stats` on one thread while a batch writes
        # on another, sharing one handle: must not race.
        import threading

        store = ResultStore(tmp_path, max_bytes=4096)
        errors = []
        done = threading.Event()

        def poll_stats():
            try:
                while not done.is_set():
                    store.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        poller = threading.Thread(target=poll_stats)
        poller.start()
        try:
            for i in range(300):
                store.put(digest_payload({"k": i}), {"v": "y" * 64})
        finally:
            done.set()
            poller.join(30)
        assert errors == []

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(5):
            store.put(digest_payload({"k": i}), {"v": i})
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_concurrent_writers(self, tmp_path):
        """Two processes hammer overlapping digests; every entry parses."""
        script = (
            "import sys\n"
            "from repro.service.store import ResultStore, digest_payload\n"
            "store = ResultStore(sys.argv[1])\n"
            "start = int(sys.argv[2])\n"
            "for i in range(start, start + 30):\n"
            "    d = digest_payload({'k': i % 40})\n"  # overlap across writers
            "    store.put(d, {'k': i % 40, 'writer': start, 'pad': 'z' * 256})\n"
        )
        env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), str(start)],
                env=env,
            )
            for start in (0, 10)
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        store = ResultStore(tmp_path)
        digests = list(store.digests())
        assert len(digests) == 40
        for digest in digests:  # every surviving entry is intact JSON
            document = store.get(digest)
            assert document is not None and document["pad"] == "z" * 256


# ---------------------------------------------------------------------------
# The codec
# ---------------------------------------------------------------------------


class TestCodec:
    def test_exact_round_trip(self):
        result = common.run_cached_result("mondrian", "join", 50.0, num_partitions=8)
        restored = result_from_document(
            json.loads(json.dumps(result_to_document(result)))
        )
        assert restored.system == result.system
        assert restored.variant == result.variant
        assert restored.runtime_s == result.runtime_s  # exact, not approx
        assert restored.energy == result.energy
        assert restored.output is None
        assert restored.metadata["restored"] is True
        for mine, theirs in zip(result.phase_perfs, restored.phase_perfs):
            assert mine.phase == theirs.phase
            assert mine.time_ns == theirs.time_ns
            assert mine.core == theirs.core
            assert mine.events == theirs.events
            assert mine.limits == theirs.limits

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            result_from_document({"schema": "something-else"})

    def test_plain_coerces_containers_and_rejects_objects(self):
        from repro.service.codec import _plain

        assert _plain({1: (2, np.int64(3))}) == {"1": [2, 3]}
        with pytest.raises(TypeError, match="cannot store"):
            _plain(object())


class TestSuiteRunCodec:
    """The multi-stage document behind ``repro.suites``' store tier."""

    def _stages(self):
        result = common.run_cached_result("cpu", "scan", 50.0, num_partitions=8)
        return [("scan:probe", "scan", "events", result)]

    def test_exact_round_trip(self):
        from repro.service.codec import (
            suite_run_from_document,
            suite_run_to_document,
        )

        stages = self._stages()
        document = suite_run_to_document(
            "windowed-clicks", "windowed", "cpu", stages, "ab" * 32
        )
        run = suite_run_from_document(json.loads(json.dumps(document)))
        assert (run["suite"], run["family"], run["system"]) == (
            "windowed-clicks", "windowed", "cpu",
        )
        assert run["output_digest"] == "ab" * 32
        (name, operator, table, restored), (_, _, _, original) = (
            run["stages"][0], stages[0],
        )
        assert (name, operator, table) == ("scan:probe", "scan", "events")
        assert restored.runtime_s == original.runtime_s  # exact, not approx
        assert restored.energy == original.energy
        assert restored.output is None
        assert restored.metadata["restored"] is True

    def test_schema_mismatch_rejected(self):
        from repro.service.codec import suite_run_from_document

        with pytest.raises(ValueError, match="suite-run schema"):
            suite_run_from_document({"schema": "suite-run/v0"})


# ---------------------------------------------------------------------------
# The store tier under run_cached_result
# ---------------------------------------------------------------------------


class TestStoreTier:
    def test_warm_store_skips_simulation(self, tmp_path, monkeypatch):
        common.configure_store(tmp_path)
        cold = common.run_cached_result("cpu", "scan", 50.0, num_partitions=8)
        common.clear_caches()  # fresh-process stand-in: memory tiers empty

        def boom(*args, **kwargs):
            raise AssertionError("simulation executed on a warm store")

        from repro.systems.machine import Machine

        monkeypatch.setattr(Machine, "run_operator", boom)
        warm = common.run_cached_result("cpu", "scan", 50.0, num_partitions=8)
        assert warm.runtime_s == cold.runtime_s
        assert warm.energy == cold.energy
        assert common.store_stats()["hits"] == 1

    def test_no_cache_still_uses_the_store(self, tmp_path):
        common.configure_store(tmp_path)
        common.run_cached_result("cpu", "scan", 50.0, num_partitions=8)
        common.set_cache_enabled(False)
        common.run_cached_result("cpu", "scan", 50.0, num_partitions=8)
        assert common.store_stats()["hits"] == 1

    def test_env_var_selects_the_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(common.STORE_ENV, str(tmp_path))
        assert common.store_path() == str(tmp_path)
        common.run_cached_result("cpu", "scan", 50.0, num_partitions=8)
        assert common.store_stats()["puts"] == 1

    def test_cache_stats_reports_tiers(self, tmp_path):
        common.configure_store(tmp_path)
        common.run_cached_result("cpu", "scan", 50.0, num_partitions=8)
        common.run_cached_result("cpu", "scan", 50.0, num_partitions=8)
        stats = common.cache_stats()
        # Subset, not equality: subsystems may register extra tiers
        # (e.g. the suite runner's "suite-result" tier on import).
        assert {"workload", "result", "store"} <= set(stats["tiers"])
        assert stats["tiers"]["result"] == {
            "hits": 1, "misses": 1, "evictions": 0, "entries": 1,
        }
        assert stats["tiers"]["store"]["puts"] == 1
        # Legacy aggregate keys survive for old callers.
        assert stats["hits"] == stats["tiers"]["workload"]["hits"] + 1


# ---------------------------------------------------------------------------
# Scenario wire format
# ---------------------------------------------------------------------------


class TestScenarioWireFormat:
    def test_round_trip_preset(self):
        scenario = Scenario("cpu", "scan", **FAST)
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_round_trip_spec(self):
        spec = SystemSpec("mondrian").with_cores(32).with_topology("star")
        scenario = Scenario(spec, "join", **FAST)
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown Scenario field"):
            Scenario.from_dict({"system": "cpu", "operator": "scan", "nope": 1})

    def test_missing_required_fields_rejected(self):
        # A hand-built wire payload that drops a required key must fail
        # loudly, not silently evaluate a default system.
        with pytest.raises(ValueError, match="missing required"):
            Scenario.from_dict({"operator": "scan"})
        with pytest.raises(ValueError, match="missing required"):
            Scenario.from_dict({"system": "cpu"})


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------


class TestBatchScheduler:
    def test_deduplicates_and_preserves_order(self, tmp_path):
        scheduler = BatchScheduler(store=tmp_path)
        a = Scenario("cpu", "scan", **FAST)
        b = Scenario("mondrian", "scan", **FAST)
        rs = scheduler.submit([a, b, a, a])
        stats = scheduler.stats()
        assert stats["submitted"] == 4
        assert stats["deduplicated"] == 2
        assert stats["executed"] == 2
        # Submission order, duplicates included.
        assert rs.unique("system") == ["cpu", "mondrian"]
        assert [r["system"] for r in rs] == ["cpu", "mondrian", "cpu", "cpu"]

    def test_second_batch_is_all_store_hits(self, tmp_path):
        scheduler = BatchScheduler(store=tmp_path)
        points = [Scenario("cpu", "scan", **FAST), Scenario("cpu", "join", **FAST)]
        first = scheduler.submit(points)
        second = scheduler.submit(points)
        stats = scheduler.stats()
        assert stats["executed"] == 2  # only the cold batch simulated
        assert stats["store_hits"] == 2
        assert first.to_records() == second.to_records()

    def test_accepts_wire_dicts_and_matches_sweep_run(self, tmp_path):
        sweep = Sweep.from_json(SMOKE_SPEC.read_text())
        expected = sweep.run()
        scheduler = BatchScheduler(store=tmp_path)
        got = scheduler.submit([s.to_dict() for s in sweep.scenarios()])
        assert got.to_json() == expected.to_json()

    def test_jobs_fan_out_matches_sequential(self, tmp_path):
        sweep = Sweep.from_json(SMOKE_SPEC.read_text())
        expected = sweep.run()
        scheduler = BatchScheduler(store=tmp_path, jobs=2)
        got = scheduler.submit_sweep(sweep)
        assert got.to_json() == expected.to_json()
        # The workers wrote their evaluations into the shared store.
        reopened = ResultStore(tmp_path)
        assert len(reopened) == sweep.size

    def test_rejects_bad_input(self, tmp_path):
        scheduler = BatchScheduler(store=tmp_path)
        with pytest.raises(TypeError):
            scheduler.submit(["not-a-scenario"])
        with pytest.raises(ValueError):
            BatchScheduler(jobs=0)

    def test_scheduler_store_is_scoped_not_global(self, tmp_path):
        """A scheduler-owned store must not leak into the process-wide
        selection (embedding a daemon would otherwise hijack the host's
        caching configuration)."""
        scheduler = BatchScheduler(store=tmp_path)
        assert common.store_path() is None
        scheduler.submit([Scenario("cpu", "scan", **FAST)])
        assert common.store_path() is None  # restored after the batch
        assert scheduler.store_path() == str(tmp_path)
        assert scheduler.store_stats()["puts"] == 1

    def test_jobs_fan_out_aggregates_worker_store_stats(self, tmp_path):
        scheduler = BatchScheduler(store=tmp_path, jobs=2)
        common.clear_caches()  # force the workers to do the store traffic
        points = [Scenario("cpu", "scan", **FAST), Scenario("cpu", "join", **FAST)]
        scheduler.submit(points)
        stats = scheduler.store_stats()
        assert stats["puts"] == 2  # workers' counters folded into the parent
        assert stats["entries"] == 2


# ---------------------------------------------------------------------------
# The daemon + client
# ---------------------------------------------------------------------------


class TestDaemon:
    @pytest.fixture()
    def server(self, tmp_path):
        handle = serve_background(store=tmp_path / "store")
        yield handle
        handle.stop()

    def test_ping(self, server):
        with ServiceClient(*server.address) as client:
            info = client.ping()
        assert info["service"] == "repro.service"
        assert info["store"].endswith("store")

    def test_round_trip_matches_in_process_sweep(self, server):
        sweep = Sweep.from_json(SMOKE_SPEC.read_text())
        expected = sweep.run()
        with ServiceClient(*server.address) as client:
            remote = client.sweep(sweep)
        assert remote.to_json() == expected.to_json()
        assert remote.to_json() + "\n" == SMOKE_GOLDEN.read_text()

    def test_evaluate_one_scenario(self, server):
        scenario = Scenario("cpu", "scan", **FAST)
        with ServiceClient(*server.address) as client:
            remote = client.evaluate(scenario)
        assert remote.to_records() == scenario.run().to_records()

    def test_stats_and_repeat_submission(self, server):
        sweep = Sweep.from_json(SMOKE_SPEC.read_text())
        with ServiceClient(*server.address) as client:
            client.sweep(sweep)
            client.sweep(sweep)
            stats = client.stats()
        scheduler = stats["scheduler"]
        assert scheduler["executed"] == sweep.size  # cold batch only
        assert scheduler["store_hits"] == sweep.size  # warm batch all hits
        assert stats["store"]["puts"] == sweep.size
        assert stats["requests"]["sweep"] == 2

    def test_errors_are_reported_not_fatal(self, server):
        with ServiceClient(*server.address) as client:
            with pytest.raises(ServiceError, match="unknown verb"):
                client.call("frobnicate")
            with pytest.raises(ServiceError, match="scenario"):
                client.call("evaluate")
            with pytest.raises(ServiceError, match="unknown workload"):
                client.evaluate({"system": "cpu", "operator": "nope"})
            assert client.ping()["service"] == "repro.service"  # still alive

    def test_oversized_request_line_gets_an_error_response(self, server):
        import socket

        from repro.service.daemon import _MAX_LINE

        with socket.create_connection(server.address, timeout=30) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b'{"pad": "' + b"x" * (_MAX_LINE + 1024) + b'"}\n')
            response = json.loads(reader.readline())
        assert response["ok"] is False
        assert "exceeds" in response["error"]
        # The server survived the abusive client.
        with ServiceClient(*server.address) as client:
            assert client.ping()["service"] == "repro.service"

    def test_serve_background_does_not_leak_store_selection(self, tmp_path):
        handle = serve_background(store=tmp_path / "other-store")
        try:
            assert common.store_path() is None
            with ServiceClient(*handle.address) as client:
                client.evaluate(Scenario("cpu", "scan", **FAST))
            assert common.store_path() is None  # still the host's choice
        finally:
            handle.stop()


# ---------------------------------------------------------------------------
# Acceptance: fresh-process warm-store runs
# ---------------------------------------------------------------------------


class TestFreshProcessAcceptance:
    def _run_cli(self, store: Path, out: Path, jobs: int = 1):
        env = dict(
            os.environ, PYTHONPATH=str(ROOT / "src"), REPRO_STORE=str(store)
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.api", "--jobs", str(jobs),
                "--sweep", str(SMOKE_SPEC), "--json", str(out),
            ],
            cwd=ROOT, env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        stats_line = next(
            line for line in proc.stderr.splitlines() if line.startswith("store:")
        )
        return dict(
            pair.split("=") for pair in stats_line.split(" ")[1:]
        )

    def test_repeated_cli_run_is_pure_store_hits(self, tmp_path):
        """The ISSUE's acceptance criterion, end to end: a second
        ``python -m repro.api --sweep`` in a *fresh process* does zero
        simulations and exports byte-identical JSON."""
        store = tmp_path / "store"
        cold_stats = self._run_cli(store, tmp_path / "cold.json")
        warm_stats = self._run_cli(store, tmp_path / "warm.json")
        assert cold_stats["misses"] == "4" and cold_stats["puts"] == "4"
        assert warm_stats["hits"] == "4"
        assert warm_stats["misses"] == "0" and warm_stats["puts"] == "0"
        cold = (tmp_path / "cold.json").read_bytes()
        warm = (tmp_path / "warm.json").read_bytes()
        assert cold == warm
        assert warm == SMOKE_GOLDEN.read_bytes()

    def test_jobs_run_reports_worker_store_traffic(self, tmp_path):
        """--jobs N does the store I/O in workers; the stderr stats must
        still report the true totals (aggregated counter deltas)."""
        store = tmp_path / "store"
        cold_stats = self._run_cli(store, tmp_path / "cold.json", jobs=2)
        assert cold_stats["puts"] == "4" and cold_stats["entries"] == "4"
        warm_stats = self._run_cli(store, tmp_path / "warm.json", jobs=2)
        assert warm_stats["hits"] == "4" and warm_stats["misses"] == "0"
        assert (tmp_path / "cold.json").read_bytes() == (
            tmp_path / "warm.json"
        ).read_bytes()
