"""Determinism audit for the suite subsystem: identical parameters must
produce byte-identical relations and identical store content digests in
every fresh interpreter.

Mirrors ``test_faults_determinism``: generation is a pure function of
(family params, seed), and the content-addressed cache key is a pure
function of the suite's declared identity -- never of process state,
dict iteration order, or interpreter hash randomization (subprocesses
run with distinct ``PYTHONHASHSEED`` values to prove it).
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.service.store import digest_payload
from repro.suites import FAMILY_TYPES, SUITES, SuitePoint
from repro.suites.runner import suite_store_payload

ROOT = Path(__file__).resolve().parents[1]

#: One subprocess probe: relation digests per family + store key digests
#: per suite + a small grid's record export digest.
_PROBE = r"""
import hashlib, json
from repro.suites import FAMILY_TYPES, SUITES, SuiteRun, SuitePoint
from repro.suites.runner import suite_store_payload
from repro.service.store import digest_payload

relations = {}
for family_type in FAMILY_TYPES:
    family = family_type()
    relations[family.family] = {
        name: hashlib.sha256(rel.data.tobytes()).hexdigest()
        for name, rel in sorted(family.tables(17).items())
    }
store_keys = {
    name: digest_payload(suite_store_payload(SuitePoint(name, "cpu")))
    for name in SUITES
}
records = SuiteRun(suites=("skew-hotspot",), systems=("cpu",)).run().to_json()
print(json.dumps({
    "relations": relations,
    "store_keys": store_keys,
    "records_digest": hashlib.sha256(records.encode()).hexdigest(),
}, sort_keys=True))
"""


def probe(hash_seed: str) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={
            **os.environ,
            "PYTHONPATH": str(ROOT / "src"),
            "PYTHONHASHSEED": hash_seed,
            "REPRO_STORE": "",
        },
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


class TestCrossInterpreterDeterminism:
    def test_two_fresh_interpreters_identical(self):
        # Distinct hash seeds: any reliance on dict/set iteration order
        # or string hashing in generation or key construction would
        # diverge here.
        assert probe("1") == probe("2")

    def test_subprocess_matches_this_process(self):
        seen = probe("0")
        for family_type in FAMILY_TYPES:
            family = family_type()
            digests = {
                name: hashlib.sha256(rel.data.tobytes()).hexdigest()
                for name, rel in sorted(family.tables(17).items())
            }
            assert digests == seen["relations"][family.family]
        for name in SUITES:
            digest = digest_payload(suite_store_payload(SuitePoint(name, "cpu")))
            assert digest == seen["store_keys"][name]


class TestKeyIdentity:
    def test_store_key_covers_generator_identity(self):
        base = digest_payload(suite_store_payload(SuitePoint("skew-mild", "cpu")))
        assert base != digest_payload(
            suite_store_payload(SuitePoint("skew-mild", "cpu", seed=18))
        )
        assert base != digest_payload(
            suite_store_payload(SuitePoint("skew-mild", "cpu", model_scale=50.0))
        )
        assert base != digest_payload(
            suite_store_payload(SuitePoint("skew-mild", "mondrian"))
        )
        assert base != digest_payload(
            suite_store_payload(SuitePoint("skew-hotspot", "cpu"))
        )

    def test_families_seeded_not_global(self):
        # Generation must not consult numpy's global RNG state.
        import numpy as np

        np.random.seed(1)
        first = {
            f().family: f().tables(17) for f in FAMILY_TYPES
        }
        np.random.seed(999)
        second = {
            f().family: f().tables(17) for f in FAMILY_TYPES
        }
        for family, tables in first.items():
            for name, rel in tables.items():
                assert (
                    rel.data.tobytes() == second[family][name].data.tobytes()
                )
