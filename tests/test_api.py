"""Tests for the scenario API: SystemSpec derivation and round-trips,
Scenario/Sweep execution, ResultSet verbs, the sweep-smoke golden file,
and the CLI entry points."""

import json
from pathlib import Path

import pytest

from repro.api import (
    ResultSet,
    Scenario,
    Sweep,
    SystemSpec,
    as_spec,
    run_plan,
)
from repro.api.__main__ import main as api_main
from repro.config.system import (
    EVALUATED_PRESETS,
    HEADLINE_PRESETS,
    SYSTEM_PRESETS,
    get_preset,
    preset_names,
)
from repro.experiments.common import ALL_SYSTEMS
from repro.systems import build_system, run_all_systems

DATA = Path(__file__).parent / "data"

#: Small, fast scenario parameters shared across the module.
FAST = dict(model_scale=50.0, num_partitions=8)


class TestSystemSpecRoundTrips:
    def test_every_preset_round_trips(self):
        # preset -> spec -> config must reproduce get_preset exactly.
        for name in preset_names():
            assert SystemSpec.from_preset(name).to_config() == get_preset(name)

    def test_spec_dict_round_trip(self):
        spec = (
            SystemSpec("mondrian")
            .with_cores(32)
            .with_topology("star")
            .with_geometry(row_size_b=2048)
            .with_timing(t_cas_ns=13.0)
        )
        assert SystemSpec.from_dict(spec.to_dict()) == spec

    def test_overrides_apply(self):
        cfg = (
            SystemSpec("mondrian")
            .with_cores(32)
            .with_topology("star")
            .with_interleave("random")
            .to_config()
        )
        assert cfg.num_cores == 32
        assert cfg.topology == "star"
        assert cfg.interleave_model == "random"
        # Untouched fields inherit from the preset.
        assert cfg.probe_algorithm == get_preset("mondrian").probe_algorithm

    def test_original_spec_untouched_by_fluent_calls(self):
        base = SystemSpec("mondrian")
        base.with_cores(32)
        assert base.to_config() == get_preset("mondrian")

    def test_core_model_override(self):
        cfg = SystemSpec("nmp-perm").with_core_model(
            "cortex-a35", simd_width_bits=512
        ).to_config()
        assert cfg.core.simd_width_bits == 512
        assert cfg.core.has_stream_buffers

    def test_core_model_keeps_prior_simd_override(self):
        # with_core_model without a width must not reset an earlier
        # with_simd back to the model's default.
        spec = SystemSpec("mondrian").with_simd(512).with_core_model("cortex-a35")
        assert spec.to_config().core.simd_width_bits == 512

    def test_simd_override_keeps_a35_naming_convention(self):
        cfg = SystemSpec("mondrian").with_simd(256).to_config()
        assert cfg.core.name == "cortex-a35-simd256"

    def test_geometry_and_timing_overrides(self):
        cfg = (
            SystemSpec("mondrian")
            .with_geometry(row_size_b=2048)
            .with_timing(t_cas_ns=13.0)
            .to_config()
        )
        assert cfg.geometry.row_size_b == 2048
        assert cfg.timing.t_cas_ns == 13.0

    def test_label_is_deterministic_and_names_overrides(self):
        spec = SystemSpec("mondrian").with_cores(32).with_topology("star")
        assert spec.label == "mondrian[num_cores=32;topology=star]"
        assert spec.named("m32").label == "m32"
        assert SystemSpec("cpu").label == "cpu"

    def test_is_preset(self):
        assert SystemSpec("cpu").is_preset
        assert not SystemSpec("cpu").with_cores(8).is_preset

    def test_as_spec_coercions(self):
        assert as_spec("cpu") == SystemSpec("cpu")
        spec = SystemSpec("mondrian")
        assert as_spec(spec) is spec
        with pytest.raises(TypeError):
            as_spec(42)

    def test_spec_is_hashable_cache_key(self):
        a = SystemSpec("mondrian").with_cores(32)
        b = SystemSpec("mondrian").with_cores(32)
        assert a.cache_key == b.cache_key
        assert len({a, b}) == 1


class TestSystemSpecValidation:
    def test_unknown_base_preset(self):
        with pytest.raises(KeyError, match="valid presets"):
            SystemSpec("cray")

    def test_unknown_core_model(self):
        with pytest.raises(ValueError, match="core model"):
            SystemSpec("cpu", core_model="pentium")

    def test_invalid_core_count_rejected_at_derivation(self):
        with pytest.raises(ValueError, match="num_cores"):
            SystemSpec("cpu").with_cores(0).to_config()

    def test_invalid_topology(self):
        with pytest.raises(ValueError, match="topology"):
            SystemSpec("cpu", topology="ring").to_config()

    def test_invalid_probe_and_partition_vocabulary(self):
        with pytest.raises(ValueError, match="probe"):
            SystemSpec("cpu").with_probe("btree").to_config()
        with pytest.raises(ValueError, match="partition"):
            SystemSpec("cpu").with_partitioning("range?").to_config()

    def test_cpu_cannot_use_permutable_partitioning(self):
        # Cross-field rule: permutable stores live in the vault
        # controllers, so the CPU-centric system cannot use them.
        with pytest.raises(ValueError, match="near-memory"):
            SystemSpec("cpu").with_partitioning("permutable").to_config()

    def test_unknown_geometry_field(self):
        with pytest.raises(ValueError, match="geometry"):
            SystemSpec("cpu").with_geometry(warp_factor=9).to_config()

    def test_unknown_interleave_model(self):
        with pytest.raises(ValueError, match="interleave"):
            SystemSpec("cpu").with_interleave("adversarial").to_config()

    def test_unknown_spec_field_in_dict(self):
        with pytest.raises(ValueError, match="unknown SystemSpec field"):
            SystemSpec.from_dict({"base": "cpu", "cores": 8})


class TestScenario:
    def test_preset_scenario_matches_direct_run(self):
        from repro.experiments.common import make_workload

        result = Scenario("mondrian", "join", seed=17, **FAST).result()
        direct = build_system("mondrian").run_operator(
            "join", make_workload("join", 17, 8), scale_factor=50.0
        )
        assert result.runtime_s == direct.runtime_s
        assert result.energy.total_j == direct.energy.total_j

    def test_custom_spec_runs_end_to_end(self):
        spec = SystemSpec("mondrian").with_cores(32).with_topology("star")
        result = Scenario(spec, "join", **FAST).result()
        assert result.runtime_s > 0
        # Fewer cores on a narrower network: not faster than the preset.
        preset = Scenario("mondrian", "join", **FAST).result()
        assert result.runtime_s >= preset.runtime_s

    def test_records_shape(self):
        records = Scenario("cpu", "join", **FAST).records()
        assert records, "no records emitted"
        for record in records:
            assert record["system"] == "cpu"
            assert record["workload"] == "join"
            assert record["time_s"] >= 0
            # Component energies sum to the record's total.
            components = (
                record["dram_dynamic_j"] + record["dram_static_j"]
                + record["core_j"] + record["llc_j"] + record["serdes_noc_j"]
            )
            assert components == pytest.approx(record["energy_j"])

    def test_phase_records_sum_to_system_result(self):
        scenario = Scenario("mondrian", "join", **FAST)
        records = scenario.records()
        result = scenario.result()
        assert sum(r["time_s"] for r in records) == pytest.approx(result.runtime_s)
        assert sum(r["energy_j"] for r in records) == pytest.approx(
            result.energy.total_j
        )

    def test_query_scenario(self):
        rs = Scenario("mondrian", "sort-then-scan", **FAST).run()
        stages = rs.unique("stage")
        assert len(stages) == 2
        assert all(rs.filter(stage=s).total("time_s") > 0 for s in stages)

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            Scenario("cpu", "cartesian")

    def test_result_perf_guardrails(self):
        with pytest.raises(ValueError, match="query scenario"):
            Scenario("cpu", "sort-then-scan").result()
        with pytest.raises(ValueError, match="operator scenario"):
            Scenario("cpu", "join").perf()

    def test_run_plan_custom_pipeline(self):
        from repro.pipeline.queries import fk_join_aggregate

        plan = fk_join_aggregate(n_r=400, n_s=1600, num_partitions=8)
        perf = run_plan(SystemSpec("mondrian").with_cores(32), plan, model_scale=50.0)
        assert perf.runtime_s > 0


class TestSweep:
    def test_grid_order_and_size(self):
        sweep = Sweep(systems=("cpu", "mondrian"), workloads=("scan", "join"),
                      scales=(50.0,), num_partitions=(8,))
        assert sweep.size == 4
        labels = [(s.system_label, s.operator) for s in sweep.scenarios()]
        assert labels == [("cpu", "scan"), ("cpu", "join"),
                          ("mondrian", "scan"), ("mondrian", "join")]

    def test_json_round_trip(self):
        sweep = Sweep.from_json((DATA / "sweep_smoke.json").read_text())
        assert Sweep.from_json(sweep.to_json()) == sweep
        assert sweep.size == 4

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            Sweep(systems=())

    def test_scalar_axes_normalize(self):
        # A bare string/number axis means a one-element axis -- both in
        # the constructor and through from_dict -- never an iterable of
        # characters.
        for sweep in (
            Sweep(systems="cpu", workloads="join", scales=500.0, seeds=3,
                  num_partitions=8),
            Sweep.from_dict({"systems": "cpu", "workloads": "join",
                             "scales": 500.0, "seeds": 3, "num_partitions": 8}),
            Sweep.from_dict({"systems": {"base": "cpu"}, "workloads": "join",
                             "scales": 500.0, "seeds": 3, "num_partitions": 8}),
        ):
            assert sweep.workloads == ("join",)
            assert sweep.size == 1

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep field"):
            Sweep.from_dict({"machines": ["cpu"]})

    def test_sweep_smoke_matches_golden(self):
        """The committed 2x2 sweep grid reproduces its golden export
        byte-for-byte (also enforced by `make sweep-smoke`)."""
        sweep = Sweep.from_json((DATA / "sweep_smoke.json").read_text())
        golden = (DATA / "sweep_smoke_golden.json").read_text()
        assert sweep.run().to_json() + "\n" == golden

    def test_parallel_run_identical(self):
        sweep = Sweep.from_json((DATA / "sweep_smoke.json").read_text())
        assert sweep.run(jobs=2).to_json() == sweep.run().to_json()


class TestResultSet:
    @pytest.fixture(scope="class")
    def rs(self):
        return Sweep(
            systems=("cpu", "mondrian"), workloads=("scan", "join"),
            scales=(50.0,), num_partitions=(8,),
        ).run()

    def test_filter_and_unique(self, rs):
        assert set(rs.unique("system")) == {"cpu", "mondrian"}
        cpu_only = rs.filter(system="cpu")
        assert set(cpu_only.unique("system")) == {"cpu"}
        assert len(cpu_only) < len(rs)

    def test_filter_predicate(self, rs):
        slow = rs.filter(lambda r: r["time_s"] > 0)
        assert len(slow) == len(rs)

    def test_pivot_runtime(self, rs):
        pivot = rs.pivot(index="system", columns="workload", values="time_s")
        assert set(pivot) == {"cpu", "mondrian"}
        assert pivot["cpu"]["join"] == pytest.approx(
            rs.total("time_s", system="cpu", workload="join")
        )
        # Mondrian wins the join at any scale.
        assert pivot["mondrian"]["join"] < pivot["cpu"]["join"]

    def test_pivot_aggregations(self, rs):
        mx = rs.pivot("system", "workload", "time_s", agg="max")
        mn = rs.pivot("system", "workload", "time_s", agg="min")
        assert mx["cpu"]["join"] >= mn["cpu"]["join"]
        with pytest.raises(ValueError, match="aggregation"):
            rs.pivot("system", "workload", "time_s", agg="median")

    def test_json_round_trip(self, rs):
        again = ResultSet.from_json(rs.to_json())
        assert again.to_records() == rs.to_records()

    def test_csv_header_and_rows(self, rs):
        lines = rs.to_csv().strip().splitlines()
        assert lines[0].split(",")[:2] == ["system", "workload"]
        assert len(lines) == len(rs) + 1

    def test_table_renders(self, rs):
        text = rs.table(columns=["system", "workload", "phase"])
        assert "system" in text and "mondrian" in text

    def test_concatenation(self, rs):
        assert len(rs + rs) == 2 * len(rs)

    def test_pivot_non_numeric_values(self):
        # Suite records carry string-typed label columns (suite, family,
        # stage); pivoting them must pass labels through, not raise
        # float-conversion errors.
        rs = ResultSet(
            [
                {"suite": "a", "system": "cpu", "family": "skew", "t": 1.0},
                {"suite": "a", "system": "cpu", "family": "skew", "t": 2.0},
                {"suite": "a", "system": "mondrian", "family": "skew", "t": 3.0},
            ]
        )
        labels = rs.pivot("suite", "system", "family")
        assert labels == {"a": {"cpu": "skew", "mondrian": "skew"}}
        ordered = rs.pivot("suite", "system", "family", agg="max")
        assert ordered["a"]["cpu"] == "skew"
        # Numeric columns still reduce as floats.
        assert rs.pivot("suite", "system", "t")["a"]["cpu"] == pytest.approx(3.0)

    def test_csv_handles_missing_and_string_columns(self):
        # Heterogeneous records (suite rows carry columns operator rows
        # lack, and vice versa): the header is the union, absent cells
        # serialize as empty -- pinned so exports of mixed grids stay
        # loadable.
        rs = ResultSet(
            [
                {"system": "cpu", "suite": "skew-mild", "time_s": 1.0},
                {"system": "cpu", "workload": "join", "time_s": 2.0},
            ]
        )
        lines = rs.to_csv().strip().splitlines()
        assert lines[0] == "system,suite,time_s,workload"
        assert lines[1] == "cpu,skew-mild,1.0,"
        assert lines[2] == "cpu,,2.0,join"


class TestCli:
    def test_api_cli_exports(self, tmp_path, capsys):
        json_out = tmp_path / "out.json"
        csv_out = tmp_path / "out.csv"
        api_main([
            "--sweep", str(DATA / "sweep_smoke.json"),
            "--json", str(json_out), "--csv", str(csv_out),
        ])
        golden = (DATA / "sweep_smoke_golden.json").read_text()
        assert json_out.read_text() == golden
        assert csv_out.read_text().startswith("system,workload,")

    def test_api_cli_inline_grid(self, capsys):
        api_main(["--system", "cpu", "--workload", "scan",
                  "--scale", "50", "--partitions", "8"])
        out = capsys.readouterr().out
        assert "1 scenarios" in out and "cpu" in out

    def test_api_cli_requires_input(self):
        with pytest.raises(SystemExit, match="nothing to run"):
            api_main([])

    def test_run_all_sweep_flag(self, capsys):
        from repro.experiments.run_all import main as run_all_main

        run_all_main(["--sweep", str(DATA / "sweep_smoke.json")])
        out = capsys.readouterr().out
        assert "Scenario sweep: 4 scenarios" in out
        records = json.loads(out[out.index("["):out.rindex("]") + 1])
        assert len(records) == 15


class TestSharedConstants:
    def test_all_systems_is_the_shared_constant(self):
        assert ALL_SYSTEMS is EVALUATED_PRESETS
        assert all(name in SYSTEM_PRESETS for name in EVALUATED_PRESETS)

    def test_headline_presets_exist(self):
        assert all(name in SYSTEM_PRESETS for name in HEADLINE_PRESETS)

    def test_run_all_systems_default_derives_from_headline(self):
        from repro.experiments.common import make_workload

        results = run_all_systems("scan", make_workload("scan", 17, 8), scale_factor=10.0)
        assert tuple(results) == HEADLINE_PRESETS


class TestWorkloadPartitionProtocol:
    def test_every_workload_declares_num_partitions(self):
        from repro.experiments.common import make_workload

        for op in ("scan", "sort", "groupby", "join"):
            assert make_workload(op, 17, 8).num_partitions == 8

    def test_machine_rejects_partitionless_workloads(self):
        with pytest.raises(TypeError, match="num_partitions"):
            build_system("cpu").run_operator("scan", object())
