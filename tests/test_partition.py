"""Direct tests for the shared partitioning phase: destination maps,
phase-cost construction and the functional shuffle integration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics.tuples import Relation
from repro.analytics.workload import make_sort_workload
from repro.operators.base import OperatorVariant
from repro.operators.partition import (
    SCHEME_HIGH_BITS,
    SCHEME_LOW_BITS,
    destination_map,
    distribute_cost,
    histogram_cost,
    run_partitioning,
)

P = 8


def variant(permutable=False, simd=False, radix=6):
    return OperatorVariant(
        radix_bits=radix, probe_algorithm="sort", permutable=permutable,
        simd=simd, num_partitions=P,
    )


def relation(keys):
    keys = np.array(keys, dtype=np.uint64)
    return Relation.from_arrays(keys, keys)


class TestDestinationMap:
    def test_low_bits_fold_onto_partitions(self):
        rel = relation([0, 1, 7, 8, 9, 63])
        dests = destination_map(rel, variant(radix=6), SCHEME_LOW_BITS, 48)
        assert list(dests) == [0, 1, 7, 0, 1, 7]  # bucket % 8

    def test_low_bits_equal_keys_colocate(self):
        rel = relation([42, 42, 42])
        dests = destination_map(rel, variant(radix=16), SCHEME_LOW_BITS, 48)
        assert len(set(dests)) == 1

    def test_high_bits_order_preserving(self):
        # Range partitioning: partition ids must be monotone in key.
        keys = np.sort(
            np.random.default_rng(1).integers(0, 1 << 48, 500, dtype=np.uint64)
        )
        dests = destination_map(relation(keys), variant(), SCHEME_HIGH_BITS, 48)
        assert all(dests[i] <= dests[i + 1] for i in range(len(dests) - 1))

    def test_high_bits_cover_all_partitions(self):
        keys = np.linspace(0, (1 << 48) - 1, 1000).astype(np.uint64)
        dests = destination_map(relation(keys), variant(), SCHEME_HIGH_BITS, 48)
        assert set(dests) == set(range(P))

    def test_high_bits_in_range(self):
        keys = np.array([(1 << 48) - 1], dtype=np.uint64)
        dests = destination_map(relation(keys), variant(), SCHEME_HIGH_BITS, 48)
        assert 0 <= dests[0] < P

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            destination_map(relation([1]), variant(), "middle", 48)

    @given(st.integers(1, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_low_bits_deterministic_colocation(self, n):
        rng = np.random.default_rng(n)
        keys = rng.integers(0, 1 << 30, n, dtype=np.uint64)
        dests = destination_map(relation(keys), variant(radix=6), SCHEME_LOW_BITS, 48)
        # Equal keys always share a destination.
        for key in np.unique(keys)[:20]:
            assert len(set(dests[keys == key])) == 1


class TestPhaseCosts:
    def test_histogram_cost_region_tracks_radix(self):
        small = histogram_cost(1000, variant(radix=6))
        big = histogram_cost(1000, variant(radix=16))
        assert small.rand_region_b == 64 * 8
        assert big.rand_region_b == 65536 * 8

    def test_histogram_simd_fully_vectorized(self):
        scalar = histogram_cost(1000, variant(simd=False))
        simd = histogram_cost(1000, variant(simd=True))
        assert scalar.simd_ops == 0
        assert simd.simd_ops == simd.instructions

    def test_distribute_permutable_fewer_instructions(self):
        addr = distribute_cost(1000, variant(permutable=False))
        perm = distribute_cost(1000, variant(permutable=True))
        assert perm.instructions < addr.instructions
        # Paper: ~1.7x simpler code.
        assert 1.3 < addr.instructions / perm.instructions < 3.0

    def test_distribute_shuffle_bytes(self):
        cost = distribute_cost(1000, variant(permutable=True))
        assert cost.shuffle_b == 1000 * 16
        assert cost.permutable_writes

    def test_distribute_addressed_partial_simd_only(self):
        addr = distribute_cost(1000, variant(permutable=False, simd=True))
        assert 0 < addr.simd_ops < addr.instructions
        perm = distribute_cost(1000, variant(permutable=True, simd=True))
        assert perm.simd_ops == perm.instructions


class TestRunPartitioning:
    def test_functional_and_costed(self):
        w = make_sort_workload(2000, P, seed=1)
        outcome = run_partitioning(w.partitions, variant(), SCHEME_HIGH_BITS, 48)
        assert len(outcome.partitions) == P
        assert sum(len(p) for p in outcome.partitions) == 2000
        assert [p.category for p in outcome.phases] == ["histogram", "distribute"]

    def test_model_scale_scales_costs_only(self):
        w = make_sort_workload(1000, P, seed=2)
        base = run_partitioning(w.partitions, variant(), SCHEME_LOW_BITS, 48)
        scaled = run_partitioning(
            w.partitions, variant(), SCHEME_LOW_BITS, 48, model_scale=50.0
        )
        assert sum(len(p) for p in scaled.partitions) == 1000  # data unchanged
        assert scaled.phases[1].shuffle_b == pytest.approx(base.phases[1].shuffle_b * 50)

    def test_permutable_and_addressed_same_multisets(self):
        w = make_sort_workload(1500, P, seed=3)
        addr = run_partitioning(w.partitions, variant(False), SCHEME_LOW_BITS, 48)
        perm = run_partitioning(w.partitions, variant(True), SCHEME_LOW_BITS, 48)
        for a, p in zip(addr.partitions, perm.partitions):
            assert a.multiset_equal(p)

    def test_rejects_bad_scale(self):
        w = make_sort_workload(100, P, seed=4)
        with pytest.raises(ValueError):
            run_partitioning(w.partitions, variant(), SCHEME_LOW_BITS, 48, model_scale=0)

    def test_shuffle_traces_exported(self):
        w = make_sort_workload(500, P, seed=5)
        outcome = run_partitioning(w.partitions, variant(True), SCHEME_LOW_BITS, 48)
        assert len(outcome.shuffle.write_traces) == P
        total = sum(len(t) for t in outcome.shuffle.write_traces)
        assert total == 500
