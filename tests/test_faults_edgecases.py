"""Edge cases of the fault-tolerant barrier and delivery protocol.

The corners the property sweep is unlikely to weight: zero-row
relations, single-machine topologies, empty segments inside otherwise
populated shuffles, and the fully adversarial ``drop_prob=1.0``
schedule where *every* delivery is dropped ``max_retries`` times before
the forced final success -- the bounded protocol's convergence
guarantee, exercised end to end through ``announce_all``.
"""

import numpy as np
import pytest

from repro.analytics.tuples import Relation
from repro.faults.plan import NULL_FAULTS, FaultPlan, FaultSpec
from repro.faults.protocol import (
    DeliverySession,
    FaultTolerantShuffleBarrier,
    ResilienceStats,
    combine_stats,
)
from repro.shuffle.engine import ShuffleEngine
from tests.test_vectorized_equivalence import (
    assert_shuffles_identical,
    make_sources,
)

HOSTILE = FaultSpec(seed=2, straggler_prob=1.0, drop_prob=1.0,
                    duplicate_prob=1.0, timeout_prob=1.0)


def run_pair(sources, dest_maps, num_dest, spec, **kwargs):
    faulted = ShuffleEngine(num_dest, faults=spec, **kwargs).run(
        sources, dest_maps
    )
    clean = ShuffleEngine(num_dest, **kwargs).run(sources, dest_maps)
    return faulted, clean


class TestDegenerateShapes:
    def test_zero_row_relations(self):
        empty = [Relation.empty("a"), Relation.empty("b")]
        maps = [np.empty(0, dtype=np.int64)] * 2
        faulted, clean = run_pair(empty, maps, 4, HOSTILE, permutable=True)
        assert_shuffles_identical(faulted, clean)
        assert faulted.barrier.all_complete()
        # Nothing moved, so nothing could be disrupted.
        assert faulted.resilience.retries == 0
        assert faulted.resilience.degraded_destinations == 0
        assert faulted.resilience.shuffle_b == 0.0

    def test_single_machine_topology(self):
        """One source, one destination: the minimal barrier."""
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1 << 30, 50, dtype=np.uint64)
        sources = [Relation.from_arrays(keys, keys, "only")]
        maps = [np.zeros(50, dtype=np.int64)]
        faulted, clean = run_pair(sources, maps, 1, HOSTILE, permutable=True)
        assert_shuffles_identical(faulted, clean)
        assert faulted.barrier.all_complete()
        # The single stream is dropped max_retries times, then lands.
        assert faulted.resilience.retries == HOSTILE.max_retries

    def test_empty_segments_between_populated_ones(self):
        """Some sources empty, some destinations receive nothing."""
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 1 << 30, 90, dtype=np.uint64)
        sources = [
            Relation.from_arrays(keys[:40], keys[:40], "s0"),
            Relation.empty("s1"),
            Relation.from_arrays(keys[40:], keys[40:], "s2"),
        ]
        # Only destinations 0 and 3 of 5 ever receive tuples.
        maps = [
            np.where(np.arange(40) % 2 == 0, 0, 3).astype(np.int64),
            np.empty(0, dtype=np.int64),
            np.full(50, 3, dtype=np.int64),
        ]
        for segmented in (True, False):
            faulted, clean = run_pair(
                sources, maps, 5, HOSTILE, permutable=True, segmented=segmented
            )
            assert_shuffles_identical(faulted, clean)
            assert faulted.barrier.all_complete()

    def test_all_dropped_then_retried_accounting(self):
        """drop_prob=1.0: every non-empty stream retries exactly
        max_retries times, and the shuffle still converges."""
        spec = FaultSpec(seed=1, drop_prob=1.0, max_retries=4)
        rng = np.random.default_rng(8)
        sources, maps = make_sources(rng, 3, 4, 120, skew=False)
        faulted, clean = run_pair(sources, maps, 4, spec, permutable=True)
        assert_shuffles_identical(faulted, clean)
        sizes = np.zeros((3, 4), dtype=np.int64)
        for s, dests in enumerate(maps):
            sizes[s] = np.bincount(dests, minlength=4)
        nonzero_streams = int(np.count_nonzero(sizes))
        assert faulted.resilience.retries == nonzero_streams * spec.max_retries
        assert faulted.resilience.degraded_destinations == int(
            np.count_nonzero(sizes.sum(axis=0))
        )


class TestFaultTolerantBarrier:
    def barrier(self, sizes):
        """A sealed barrier announced via ``announce_all``."""
        sizes = np.asarray(sizes, dtype=np.int64)
        b = FaultTolerantShuffleBarrier(sizes.shape[1])
        b.announce_all(sizes)
        b.seal()
        return b

    def test_duplicate_does_not_corrupt_byte_count(self):
        b = self.barrier([[32, 16], [0, 48]])
        b.deliver(0, 32)
        b.discard_duplicate(0, 32)  # the copy is recognized and dropped
        assert b.vault_complete(0)  # not over-delivered
        assert b.duplicates_discarded == 1
        assert b.duplicate_bytes == 32
        # A genuine over-delivery still trips the guard.
        with pytest.raises(ValueError):
            b.deliver(0, 1)

    def test_duplicate_requires_sealed_barrier(self):
        b = FaultTolerantShuffleBarrier(2)
        b.announce(0, 0, 8)
        with pytest.raises(RuntimeError):
            b.discard_duplicate(0, 8)
        with pytest.raises(ValueError):
            self.barrier([[8]]).discard_duplicate(0, -1)

    def test_timeouts_recorded_not_raised(self):
        b = self.barrier([[16]])
        b.record_timeout(0)
        b.record_timeout(0)
        assert b.timeouts == 2
        b.deliver_batch(0, 16)
        assert b.all_complete()

    def test_vault_bounds_checked(self):
        b = self.barrier([[16, 16]])
        with pytest.raises(ValueError):
            b.discard_duplicate(5, 8)
        with pytest.raises(ValueError):
            b.record_timeout(-1)


class TestDeliverySession:
    def test_shape_mismatch_rejected(self):
        plan = FaultPlan.build(FaultSpec(seed=1, drop_prob=0.5), 2, 3)
        with pytest.raises(ValueError):
            DeliverySession(plan, np.zeros((3, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            plan.disrupted_destinations(np.zeros((1, 1)))

    def test_plan_validation(self):
        spec = FaultSpec(seed=1, drop_prob=0.5)
        with pytest.raises(ValueError):
            FaultPlan.build(spec, -1, 3)
        with pytest.raises(ValueError):
            FaultPlan.build(spec, 2, 0)
        with pytest.raises(ValueError):
            FaultPlan.build(spec, 2, 3, salt=-1)

    def test_session_exposes_its_plan(self):
        plan = FaultPlan.build(FaultSpec(seed=1, drop_prob=0.5), 2, 3)
        session = DeliverySession(plan, np.zeros((2, 3), dtype=np.int64))
        assert session.plan is plan
        assert plan.active
        assert not FaultPlan.build(NULL_FAULTS, 2, 3).active


class TestSpecAndStats:
    @pytest.mark.parametrize("bad", [
        {"seed": -1},
        {"drop_prob": 1.5},
        {"duplicate_prob": -0.1},
        {"straggler_slowdown": 0.5},
        {"max_retries": 0},
        {"backoff_base": -1.0},
    ])
    def test_spec_validation(self, bad):
        with pytest.raises(ValueError):
            FaultSpec(**bad)

    def test_spec_dict_round_trip(self):
        spec = FaultSpec(seed=9, drop_prob=0.25, max_retries=5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict() == {"seed": 9, "drop_prob": 0.25,
                                  "max_retries": 5}
        with pytest.raises(ValueError):
            FaultSpec.from_dict({"nope": 1})
        assert not NULL_FAULTS.active
        assert NULL_FAULTS.to_dict() == {}

    def test_combine_stats(self):
        assert combine_stats(None, None) is None
        a = ResilienceStats(retries=2, shuffle_b=10.0)
        b = ResilienceStats(retries=3, shuffle_b=5.0)
        merged = combine_stats(a, None, b)
        assert merged.retries == 5
        assert merged.shuffle_b == 15.0
        # Merging never mutates the inputs.
        assert a.retries == 2 and b.retries == 3

    def test_straggler_share_bounds(self):
        stats = ResilienceStats()
        assert stats.straggler_share == 0.0
        stats.shuffle_b = 100.0
        stats.straggler_stall_b = 50.0
        assert 0.0 < stats.straggler_share < 1.0
        meta = stats.to_metadata()
        assert meta["straggler_share"] == stats.straggler_share
        assert isinstance(meta["retries"], int)
