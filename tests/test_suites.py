"""Benchmark-suite subsystem tests: families, registry, runner, scoring,
CLI, and the committed goldens.

The grid here is the same one ``make suites-smoke`` diffs, so these
tests and the Makefile target can never disagree about what the suite
subsystem produces.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analytics.tuples import Relation
from repro.experiments import common
from repro.suites import (
    ColumnSpec,
    CompositeKeyFamily,
    DictEncoder,
    FAMILIES,
    FAMILY_TYPES,
    SKEW_PRESETS,
    SUITES,
    SkewFamily,
    StringKeyFamily,
    SuitePoint,
    SuiteRun,
    WindowedFamily,
    functional_digests,
    get_suite,
    pack_columns,
    product_vocabulary,
    run_suite_point,
    score_records,
    unpack_columns,
)
from repro.suites import __main__ as suites_cli
from repro.suites import families as fam
from repro.suites.runner import _point_worker, relation_digest, suite_store_payload
from repro.suites.scoring import (
    DEFAULT_WEIGHTS,
    render_report,
    report_json,
)

DATA = Path(__file__).parent / "data"

#: Small grid shared with ``make suites-smoke``.
SMOKE_SUITES = ("dict-products", "skew-hotspot")
SMOKE_SYSTEMS = ("cpu", "mondrian")


@pytest.fixture(autouse=True)
def _fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()
    common.configure_store(None)


@pytest.fixture
def scoped_store(tmp_path):
    previous = common.store_selection()
    store = common.configure_store(tmp_path / "store")
    yield store
    common.restore_store_selection(previous)


# ---------------------------------------------------------------------------
# Families: packing, encoding, generation.
# ---------------------------------------------------------------------------


class TestCompositePacking:
    def test_pack_unpack_roundtrip(self):
        specs = (
            ColumnSpec("a", 6, 40),
            ColumnSpec("b", 12, 3000),
            ColumnSpec("c", 9, 364),
        )
        rng = np.random.default_rng(3)
        cols = [
            rng.integers(0, s.cardinality, size=500, dtype=np.uint64)
            for s in specs
        ]
        packed = pack_columns(cols, specs)
        assert packed.dtype == np.uint64
        for got, want in zip(unpack_columns(packed, specs), cols):
            np.testing.assert_array_equal(got, want)

    def test_packing_is_lexicographic(self):
        specs = (ColumnSpec("hi", 4, 16), ColumnSpec("lo", 4, 16))
        a = pack_columns([np.array([1]), np.array([15])], specs)
        b = pack_columns([np.array([2]), np.array([0])], specs)
        assert a[0] < b[0]  # leading column dominates the order

    def test_leading_column_range_matches_unpack(self):
        family = CompositeKeyFamily()
        bound = fam.leading_column_range(family.specs, 20)
        keys = family.tables(17)["facts"].keys
        region = unpack_columns(keys, family.specs)[0]
        np.testing.assert_array_equal(keys < bound, region < 20)

    def test_budget_enforced(self):
        with pytest.raises(ValueError, match="bit-budget|budget is"):
            fam.packed_bits((ColumnSpec("a", 40, 2), ColumnSpec("b", 30, 2)))
        with pytest.raises(ValueError, match="bits must be"):
            ColumnSpec("a", 0, 1)
        with pytest.raises(ValueError, match="does not fit"):
            ColumnSpec("a", 2, 5)

    def test_pack_validates(self):
        specs = (ColumnSpec("a", 4, 10),)
        with pytest.raises(ValueError, match="one array per column"):
            pack_columns([], specs + specs)
        with pytest.raises(ValueError, match="cardinality"):
            pack_columns([np.array([10])], specs)


class TestDictEncoder:
    def test_roundtrip_and_prefix(self):
        enc = DictEncoder(["pear", "apple", "plum", "apple"])
        assert enc.vocabulary == ("apple", "pear", "plum")
        assert len(enc) == 3
        codes = enc.encode(["plum", "apple"])
        assert codes.tolist() == [2, 0]
        assert enc.decode(codes) == ["plum", "apple"]
        lo, hi = enc.prefix_range("p")
        assert enc.vocabulary[lo:hi] == ("pear", "plum")
        assert enc.bound("b") == 1  # only "apple" is below "b"
        assert enc.key_space_bits == 2

    def test_errors(self):
        with pytest.raises(ValueError, match="empty"):
            DictEncoder([])
        enc = DictEncoder(["a", "b"])
        with pytest.raises(KeyError, match="not in vocabulary"):
            enc.encode(["c"])
        with pytest.raises(KeyError, match="out of vocabulary"):
            enc.decode(np.array([5]))

    def test_product_vocabulary(self):
        vocab = product_vocabulary(2)
        assert len(vocab) == 8 * 8 * 2
        assert len(set(vocab)) == len(vocab)
        with pytest.raises(ValueError, match="at least one variant"):
            product_vocabulary(0)


class TestFamilies:
    @pytest.mark.parametrize("family_type", FAMILY_TYPES)
    def test_deterministic_and_well_formed(self, family_type):
        family = family_type()
        a, b = family.tables(17), family.tables(17)
        assert set(a) == set(b)
        for name in a:
            assert isinstance(a[name], Relation)
            assert bytes(a[name].data.tobytes()) == bytes(b[name].data.tobytes())
            assert a[name].keys.max() < (1 << family.key_space_bits)
        assert family.tables(18)[next(iter(a))].data.tobytes() != a[
            next(iter(a))
        ].data.tobytes()
        params = family.cache_params()
        assert params["family"] == family.family

    def test_join_families_satisfy_fk_invariant(self):
        comp = CompositeKeyFamily().tables(17)
        assert set(comp["facts"].keys).issubset(set(comp["dimension"].keys))
        assert len(np.unique(comp["dimension"].keys)) == len(comp["dimension"])
        skew = SkewFamily(preset="zipf").tables(17)
        assert set(skew["events"].keys).issubset(set(skew["users"].keys))

    def test_windowed_keys_are_window_ids(self):
        family = WindowedFamily()
        clicks = family.tables(17)["clicks"]
        assert int(clicks.keys.max()) <= family.max_timestamp >> family.window_shift
        # Window ids arrive in nondecreasing (stream) order.
        assert np.all(np.diff(clicks.keys.astype(np.int64)) >= 0)

    def test_skew_presets(self):
        assert set(SKEW_PRESETS) == {"uniform", "mild", "zipf", "hotspot"}
        hot = SkewFamily(preset="hotspot").tables(17)["events"].keys
        mild = SkewFamily(preset="uniform").tables(17)["events"].keys
        top = lambda keys: np.bincount(
            np.unique(keys, return_inverse=True)[1]
        ).max()
        assert top(hot) > 5 * top(mild)
        with pytest.raises(ValueError, match="unknown skew preset"):
            SkewFamily(preset="extreme")

    def test_generator_domain_errors(self):
        small = CompositeKeyFamily(
            region_bits=1, regions=2, store_bits=1, stores=2, day_bits=1, days=2
        )
        with pytest.raises(ValueError, match="domain too small"):
            small.tables(17)
        with pytest.raises(ValueError, match="key space too small"):
            SkewFamily(user_key_bits=4).tables(17)

    def test_string_family_runs_on_integer_kernels(self):
        family = StringKeyFamily()
        tables = family.tables(17)
        assert tables["orders"].keys.dtype == np.uint64
        enc = family.encoder()
        names = enc.decode(tables["products"].keys)
        assert names == sorted(names)


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_four_families_covered(self):
        assert len(SUITES) >= 4
        assert set(FAMILIES) == {
            "composite-key", "string-key", "windowed", "skew-family",
        }

    @pytest.mark.parametrize("name", sorted(SUITES))
    def test_plans_build_and_validate(self, name):
        suite = get_suite(name)
        plan = suite.build_plan(seed=17, num_partitions=8)
        assert plan.stage_names == suite.stage_names()
        assert plan.key_space_bits == suite.family.key_space_bits
        params = suite.cache_params()
        assert params["suite"] == name
        assert params["family"]["family"] == suite.family_name

    def test_unknown_suite(self):
        with pytest.raises(KeyError, match="unknown suite"):
            get_suite("nope")


# ---------------------------------------------------------------------------
# Runner: caching, store round-trip, grid driver.
# ---------------------------------------------------------------------------


class TestRunner:
    def test_point_validation(self):
        with pytest.raises(KeyError):
            SuitePoint("nope", "cpu")
        with pytest.raises(TypeError, match="named system presets"):
            SuitePoint("skew-mild", object())
        with pytest.raises(ValueError, match="model_scale"):
            SuitePoint("skew-mild", "cpu", model_scale=0)
        with pytest.raises(ValueError, match="partition"):
            SuitePoint("skew-mild", "cpu", num_partitions=0)

    def test_memory_tier_hit_returns_same_outcome(self):
        point = SuitePoint("windowed-clicks", "cpu")
        first = run_suite_point(point)
        assert run_suite_point(point) is first

    def test_store_cold_then_warm(self, scoped_store):
        point = SuitePoint("dict-products", "mondrian")
        cold = run_suite_point(point)
        assert scoped_store.stats()["puts"] == 1
        common.clear_caches()  # drop memory tier; store must serve
        warm = run_suite_point(point)
        assert scoped_store.stats()["hits"] >= 1
        assert warm.output_digest == cold.output_digest
        assert [s[:3] for s in warm.stages] == [s[:3] for s in cold.stages]
        # Restored stage results drop the functional payload.
        assert warm.stages[-1][3].output is None
        assert warm.stages[-1][3].metadata.get("restored") is True
        # The records rebuilt from restored results match exactly.
        assert SuitePoint.records(point) == point.records()

    def test_memory_hit_write_through(self, tmp_path):
        point = SuitePoint("skew-mild", "cpu")
        run_suite_point(point)  # computed with no store configured
        store = common.configure_store(tmp_path / "late-store")
        run_suite_point(point)  # memory hit: must heal onto disk
        assert store.stats()["puts"] == 1
        run_suite_point(point)  # persisted marker: no second put
        assert store.stats()["puts"] == 1

    def test_corrupt_store_document_is_a_miss(self, scoped_store):
        from repro.service.store import digest_payload

        point = SuitePoint("skew-mild", "cpu")
        digest = digest_payload(suite_store_payload(point))
        scoped_store.put(digest, {"schema": "something-else/v9"})
        outcome = run_suite_point(point)  # recomputes + overwrites
        assert outcome.output_digest
        common.clear_caches()
        assert run_suite_point(point).output_digest == outcome.output_digest

    def test_records_shape(self):
        point = SuitePoint("composite-sales", "cpu")
        records = point.run().to_records()
        assert records
        first = records[0]
        assert first["suite"] == "composite-sales"
        assert first["family"] == "composite-key"
        assert first["system"] == "cpu"
        assert {"stage", "phase", "time_s", "energy_j"} <= set(first)
        stages = {r["stage"] for r in records}
        assert stages == set(get_suite("composite-sales").stage_names())

    def test_outcome_totals(self):
        outcome = run_suite_point(SuitePoint("skew-hotspot", "nmp-perm"))
        assert outcome.runtime_s > 0
        assert outcome.energy_j > 0
        assert outcome.family == "skew-family"

    def test_grid_axes_validate(self):
        run = SuiteRun(suites="skew-mild", systems="cpu")
        assert run.suites == ("skew-mild",)
        assert run.size == 1
        with pytest.raises(ValueError, match="must not be empty"):
            SuiteRun(suites=())

    def test_grid_jobs_equivalence(self):
        grid = SuiteRun(suites=SMOKE_SUITES, systems=SMOKE_SYSTEMS)
        sequential = grid.run(jobs=1)
        pooled = grid.run(jobs=2)
        assert sequential.to_json() == pooled.to_json()
        with pytest.raises(ValueError, match="jobs"):
            grid.run(jobs=0)

    def test_point_worker_in_process(self, scoped_store):
        point = SuitePoint("windowed-clicks", "cpu")
        records, delta, spans = _point_worker(
            (point, common.cache_enabled(), common.store_path())
        )
        assert records == point.records()
        assert delta is not None and delta["puts"] == 1
        assert spans is None  # tracing was not requested

    def test_outcomes_grid_order(self):
        grid = SuiteRun(suites=SMOKE_SUITES, systems=("cpu",))
        outcomes = grid.outcomes()
        assert [o.suite for o in outcomes] == list(SMOKE_SUITES)

    def test_output_digest_is_preset_invariant(self):
        digests = {
            system: run_suite_point(SuitePoint("dict-products", system)).output_digest
            for system in SMOKE_SYSTEMS
        }
        assert len(set(digests.values())) == 1
        rel = Relation.from_arrays(
            np.array([1], dtype=np.uint64), np.array([2], dtype=np.uint64), "r"
        )
        assert relation_digest(rel) == relation_digest(rel)


# ---------------------------------------------------------------------------
# Goldens: smoke grid, functional answers, score report.
# ---------------------------------------------------------------------------


class TestGoldens:
    def test_smoke_grid_matches_golden(self):
        grid = SuiteRun(suites=SMOKE_SUITES, systems=SMOKE_SYSTEMS)
        golden = (DATA / "suites_smoke_golden.json").read_text()
        assert grid.run().to_json() + "\n" == golden

    def test_functional_digests_match_golden(self):
        golden = json.loads((DATA / "suites_functional_golden.json").read_text())
        assert functional_digests() == golden

    def test_score_report_matches_golden(self):
        results = SuiteRun().run()
        report = score_records(results)
        golden = (DATA / "suites_score_golden.json").read_text()
        assert report_json(report) + "\n" == golden


# ---------------------------------------------------------------------------
# Scoring.
# ---------------------------------------------------------------------------


def _toy_records(with_resilience=False):
    records = []
    for system, t in (("cpu", 4.0), ("mondrian", 1.0)):
        for stage, frac in (("a", 0.5), ("b", 0.5)):
            record = {
                "suite": "toy",
                "family": "toy-family",
                "system": system,
                "stage": stage,
                "time_s": t * frac,
                "energy_j": 2 * t * frac,
                "bytes": 100.0,
            }
            if with_resilience:
                record["retry_shuffle_b"] = 10.0 if system == "cpu" else 0.0
                record["backoff_stall_b"] = 0.0
            records.append(record)
    return records


class TestScoring:
    def test_layers_and_tiers(self):
        from repro.api.results import ResultSet

        report = score_records(ResultSet(_toy_records()))
        toy = report["suites"]["toy"]
        assert toy["winner"] == "mondrian"
        mondrian = toy["systems"]["mondrian"]
        assert mondrian["composite"] == pytest.approx(1.0)
        assert mondrian["tier"] == "A"
        cpu = toy["systems"]["cpu"]
        assert cpu["layers"]["time"] == pytest.approx(0.25)
        assert cpu["layers"]["balance"] == pytest.approx(1.0)
        assert cpu["layers"]["resilience"] == 1.0  # neutral without faults
        assert cpu["tier"] == "C"
        assert report["families"]["toy-family"]["winner"] == "mondrian"
        assert [e["system"] for e in report["ranking"]] == ["mondrian", "cpu"]

    def test_resilience_layer_prices_overhead(self):
        from repro.api.results import ResultSet

        report = score_records(ResultSet(_toy_records(with_resilience=True)))
        layers = report["suites"]["toy"]["systems"]["cpu"]["layers"]
        assert layers["resilience"] == pytest.approx(1.0 / 1.1)

    def test_weight_validation(self):
        from repro.api.results import ResultSet

        rs = ResultSet(_toy_records())
        with pytest.raises(ValueError, match="exactly the layers"):
            score_records(rs, weights={"time": 1.0})
        with pytest.raises(ValueError, match="positive total"):
            score_records(rs, weights={k: 0.0 for k in DEFAULT_WEIGHTS})
        with pytest.raises(ValueError, match="no records"):
            score_records(ResultSet())
        # Unnormalized weights renormalize to the same report.
        doubled = {k: 2 * v for k, v in DEFAULT_WEIGHTS.items()}
        assert report_json(score_records(rs, weights=doubled)) == report_json(
            score_records(rs)
        )

    def test_render_report(self):
        from repro.api.results import ResultSet

        text = render_report(score_records(ResultSet(_toy_records())))
        assert "Per-suite scores" in text
        assert "Overall ranking" in text
        assert "toy-family" in text


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------


class TestCli:
    def test_list(self, capsys):
        suites_cli.main(["list"])
        out = capsys.readouterr().out
        for name in SUITES:
            assert name in out
        assert "4 families" in out

    def test_run_summary_and_exports(self, capsys, tmp_path):
        args = ["run", "--suite", "skew-mild", "--system", "cpu"]
        suites_cli.main(args)
        out = capsys.readouterr().out
        assert "SuiteRun: 1 points" in out
        out_path = tmp_path / "records.json"
        suites_cli.main(args + ["--json", str(out_path)])
        capsys.readouterr()
        records = json.loads(out_path.read_text())
        assert {r["system"] for r in records} == {"cpu"}

    def test_run_all_flag(self, capsys):
        suites_cli.main(
            ["run", "--all", "--system", "cpu", "--json", "-"]
        )
        records = json.loads(capsys.readouterr().out)
        assert {r["suite"] for r in records} == set(SUITES)

    def test_score_stdout_json(self, capsys):
        suites_cli.main(
            ["score", "--suite", "skew-mild", "--suite", "skew-hotspot",
             "--system", "cpu", "--system", "mondrian", "--json", "-"]
        )
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "suite-report/v1"
        assert report["suites"]["skew-mild"]["winner"] == "mondrian"

    def test_score_render_and_weights(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        suites_cli.main(
            ["score", "--suite", "skew-mild", "--system", "cpu",
             "--system", "mondrian", "--weight", "time=1", "--weight",
             "energy=0", "--weight", "balance=0", "--weight",
             "resilience=0", "--json", str(out_path)]
        )
        report = json.loads(out_path.read_text())
        layers = report["suites"]["skew-mild"]["systems"]["mondrian"]["layers"]
        assert report["suites"]["skew-mild"]["systems"]["mondrian"][
            "composite"
        ] == pytest.approx(layers["time"])
        suites_cli.main(["score", "--suite", "skew-mild", "--system", "cpu"])
        assert "Overall ranking" in capsys.readouterr().out

    def test_cli_errors(self):
        with pytest.raises(SystemExit):
            suites_cli.main(["run", "--jobs", "0"])
        with pytest.raises(SystemExit, match="LAYER=W"):
            suites_cli.main(["score", "--weight", "bogus=1"])
        with pytest.raises(SystemExit, match="not a number"):
            suites_cli.main(["score", "--weight", "time=abc"])
        with pytest.raises(KeyError, match="unknown suite"):
            suites_cli.main(["run", "--suite", "nope"])

    def test_run_no_cache_and_store(self, capsys, tmp_path):
        suites_cli.main(
            ["run", "--suite", "windowed-clicks", "--system", "cpu",
             "--no-cache", "--store", str(tmp_path / "store"), "--json", "-"]
        )
        captured = capsys.readouterr()
        assert "store:" in captured.err
        assert json.loads(captured.out)
        common.set_cache_enabled(True)

    def test_module_entrypoint(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.suites", "list"],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=Path(__file__).parent.parent,
        )
        assert proc.returncode == 0
        assert "composite-sales" in proc.stdout
