"""Cross-layer integration: the *actual* write traces produced by the
operators' partitioning shuffle, replayed on the event-accurate DRAM
bank model.

This closes the loop between three layers built independently --
operators -> shuffle engine -> DRAM banks -- and verifies the paper's
core claim end to end on real traffic: permutable vault controllers
activate each destination row about once, addressed ones activate per
object, and the analytic estimator the performance pipeline uses agrees
with the event model on this traffic.
"""

import numpy as np
import pytest

from repro.analytics.workload import make_groupby_workload, make_join_workload
from repro.config.dram import DramTiming, HmcGeometry
from repro.dram import InterleavedWrites, VaultMemory, estimate_pattern
from repro.dram.vault import VaultRequest
from repro.operators.base import OperatorVariant
from repro.operators.partition import SCHEME_LOW_BITS, run_partitioning

GEO = HmcGeometry()
TIMING = DramTiming()
P = 16
TUPLE_B = 16


def shuffle_traces(permutable, n=8000, seed=3):
    """Run a real Group-by partitioning and return per-vault traces."""
    w = make_groupby_workload(n, P, seed=seed)
    v = OperatorVariant(
        radix_bits=6, probe_algorithm="sort", permutable=permutable,
        simd=False, num_partitions=P,
    )
    outcome = run_partitioning(w.partitions, v, SCHEME_LOW_BITS, w.key_space_bits)
    return outcome.shuffle.write_traces


def replay(trace, inter_arrival_ns=2.0):
    vault = VaultMemory(GEO, TIMING)
    reqs = [
        VaultRequest(i * inter_arrival_ns, addr=int(a), size_b=TUPLE_B, is_write=True)
        for i, a in enumerate(trace)
    ]
    done = vault.run_trace(reqs)
    return vault.stats, done


class TestOperatorTrafficOnEventModel:
    @pytest.fixture(scope="class")
    def replayed(self):
        results = {}
        for permutable in (False, True):
            traces = shuffle_traces(permutable)
            # Replay the busiest destination vault.
            busiest = max(traces, key=len)
            results[permutable] = (len(busiest), *replay(busiest))
        return results

    def test_permutable_one_activation_per_row(self, replayed):
        n_objects, stats, _ = replayed[True]
        rows = int(np.ceil(n_objects * TUPLE_B / GEO.row_size_b))
        assert stats.activations == pytest.approx(rows, rel=0.02)

    def test_addressed_activates_per_object_scale(self, replayed):
        n_objects, stats, _ = replayed[False]
        rows = int(np.ceil(n_objects * TUPLE_B / GEO.row_size_b))
        # Far more than one activation per row; the precise count depends
        # on FR-FCFS recovery, but it must be within a factor of the
        # object count and well above the row count.
        assert stats.activations > rows * 3
        assert stats.activations <= n_objects

    def test_permutable_saving_factor_on_real_traffic(self, replayed):
        _, addr_stats, addr_done = replayed[False]
        _, perm_stats, perm_done = replayed[True]
        saving = addr_stats.activations / perm_stats.activations
        # At 15 concurrent sources the sliding FR-FCFS window recovers a
        # fair amount on its own; permutability still saves several-fold
        # (the paper-scale 63-source regime saves ~14x, see test_dram).
        assert saving > 2.5
        assert perm_done < addr_done  # and it finishes sooner

    def test_analytic_estimator_agrees(self, replayed):
        for permutable in (False, True):
            n_objects, stats, _ = replayed[permutable]
            est = estimate_pattern(
                InterleavedWrites(
                    total_b=n_objects * TUPLE_B,
                    object_b=TUPLE_B,
                    num_sources=P - 1,
                    permutable=permutable,
                ),
                GEO,
                TIMING,
            )
            # Permutable: exact.  Addressed at 15 sources: the estimator
            # is deliberately conservative about FR-FCFS recovery (its
            # sliding window attracts same-row stragglers beyond the
            # nominal window), so allow it to overestimate activations by
            # a few x here; at the paper's 63 sources it is within 2x
            # (tests/test_dram.py).
            if permutable:
                assert est.activations == pytest.approx(stats.activations, rel=0.05)
            else:
                assert stats.activations <= est.activations <= stats.activations * 5
                assert est.activations > 0


class TestJoinShuffleReplay:
    def test_join_r_and_s_shuffles_both_benefit(self):
        w = make_join_workload(2000, 6000, P, seed=9)
        results = {}
        for permutable in (False, True):
            v = OperatorVariant(
                radix_bits=6, probe_algorithm="hash", permutable=permutable,
                simd=False, num_partitions=P,
            )
            outcome = run_partitioning(
                w.s_partitions, v, SCHEME_LOW_BITS, w.key_space_bits
            )
            stats, _ = replay(max(outcome.shuffle.write_traces, key=len))
            results[permutable] = stats.activations
        assert results[True] * 3 < results[False]

    def test_row_hit_rate_shape(self):
        w = make_join_workload(1000, 4000, P, seed=10)
        v_perm = OperatorVariant(
            radix_bits=6, probe_algorithm="hash", permutable=True,
            simd=False, num_partitions=P,
        )
        outcome = run_partitioning(w.s_partitions, v_perm, SCHEME_LOW_BITS, w.key_space_bits)
        stats, _ = replay(max(outcome.shuffle.write_traces, key=len))
        # Sequential tail writes: 15 of 16 writes hit the open row.
        assert stats.row_hit_rate > 0.9
