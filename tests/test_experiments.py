"""Tests for the experiment drivers: every table/figure driver runs and
reproduces the paper's qualitative claims at reduced scale."""

import pytest

from repro.experiments import (
    ablations,
    fig6_probe,
    fig7_overall,
    fig8_energy,
    fig9_efficiency,
    sec31_activation,
    sec32_mlp,
    table1_operators,
    table2_phases,
    table5_partition,
)
from repro.experiments.common import ResultMatrix, format_table, make_workload

#: Reduced scale so the whole experiment suite runs quickly in CI.
SCALE = 500.0


@pytest.fixture(scope="module")
def seed():
    return 17


class TestCommon:
    def test_make_workload_all_operators(self):
        for op in ("scan", "sort", "groupby", "join"):
            assert make_workload(op, num_partitions=8) is not None
        with pytest.raises(ValueError):
            make_workload("cross-product")

    def test_result_matrix_caches(self):
        matrix = ResultMatrix(systems=("cpu",), operators=("scan",), scale=10.0)
        a = matrix.result("cpu", "scan")
        b = matrix.result("cpu", "scan")
        assert a is b

    def test_result_matrix_deprecation_warns_once_per_construction(self):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ResultMatrix(systems=("cpu",), operators=("scan",), scale=10.0)
        ours = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(ours) == 1  # exactly once per construction
        assert "repro.api.Scenario" in str(ours[0].message)
        # stacklevel=2: the warning points at *this* file, not common.py.
        assert ours[0].filename == __file__

    def test_result_matrix_usable_after_warning(self):
        with pytest.warns(DeprecationWarning):
            matrix = ResultMatrix(systems=("cpu",), operators=("scan",), scale=10.0)
        results = matrix.all_results()
        assert set(results) == {("cpu", "scan")}

    def test_format_table(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "333" in lines[3]


class TestTable1:
    def test_all_operators_verified(self):
        out = table1_operators.run()
        assert all(out["verified"].values())
        assert set(out["map"]) == {"scan", "groupby", "join", "sort"}
        assert "GroupByKey" in out["map"]["groupby"]
        assert "ok" in out["table"]


class TestTable2:
    def test_phase_structure(self):
        out = table2_phases.run()
        s = out["structure"]
        assert s["scan"]["histogram"] == []
        assert s["scan"]["distribute"] == []
        for op in ("join", "groupby", "sort"):
            assert s[op]["histogram"], op
            assert s[op]["distribute"], op
        assert "hash-build" in s["join"]["probe"]
        assert "mergesort" in s["sort"]["probe"]


class TestTable5:
    def test_partition_ordering(self):
        out = table5_partition.run(scale=SCALE)
        s = out["speedups"]
        assert 1 < s["nmp-rand"] < s["nmp-perm"] < s["mondrian-noperm"] < s["mondrian"]

    def test_within_order_of_magnitude_of_paper(self):
        out = table5_partition.run(scale=SCALE)
        for name, paper in out["paper"].items():
            measured = out["speedups"][name]
            assert paper / 10 < measured < paper * 10, (name, measured, paper)


class TestFig6:
    @pytest.fixture(scope="class")
    def out(self):
        return fig6_probe.run(scale=SCALE)

    def test_scan_identical_for_both_nmp(self, out):
        s = out["speedups"]["scan"]
        assert s["nmp-rand"] == pytest.approx(s["nmp-seq"])

    def test_all_nmp_beat_cpu(self, out):
        for op, series in out["speedups"].items():
            for system, value in series.items():
                assert value > 1.0, (op, system)

    def test_rand_beats_seq_on_join_and_groupby(self, out):
        for op in ("join", "groupby"):
            s = out["speedups"][op]
            assert s["nmp-rand"] > s["nmp-seq"], op

    def test_mondrian_best_probe_everywhere(self, out):
        for op, series in out["speedups"].items():
            assert series["mondrian"] >= max(
                series["nmp-rand"], series["nmp-seq"]
            ) * 0.95, op


class TestFig7:
    @pytest.fixture(scope="class")
    def out(self):
        return fig7_overall.run(scale=SCALE)

    def test_ordering_nmp_to_mondrian(self, out):
        for op, series in out["speedups"].items():
            assert series["nmp"] <= series["nmp-perm"] * 1.01, op
            assert series["mondrian"] > series["nmp"], op

    def test_mondrian_peak_band(self, out):
        # Paper: up to 49x.  Accept the same order of magnitude.
        assert 5 < out["mondrian_peak"] < 200

    def test_mondrian_vs_best_nmp_band(self, out):
        # Paper: up to 5x.
        assert 1.2 < out["mondrian_vs_best_nmp_peak"] < 10


class TestFig8:
    @pytest.fixture(scope="class")
    def out(self):
        return fig8_energy.run(scale=SCALE)

    def test_fractions_normalized(self, out):
        for system, fr in out["fractions"].items():
            assert sum(fr.values()) == pytest.approx(1.0), system

    def test_cpu_cores_dominate(self, out):
        fr = out["fractions"]["cpu"]
        assert fr["cores"] == max(fr.values())

    def test_nmp_and_nmp_perm_profiles_close(self, out):
        # Paper: "the energy profiles of NMP and NMP-perm are near-identical".
        a, b = out["fractions"]["nmp-rand"], out["fractions"]["nmp-perm"]
        for component in a:
            assert a[component] == pytest.approx(b[component], abs=0.1), component

    def test_mondrian_shrinks_static_share(self, out):
        mon = out["fractions"]["mondrian"]
        nmp = out["fractions"]["nmp-rand"]
        static_mon = mon["dram_static"] + mon["serdes_noc"]
        static_nmp = nmp["dram_static"] + nmp["serdes_noc"]
        # Relative to its dynamic share, Mondrian is less static-dominated.
        assert static_mon / mon["dram_dyn"] < static_nmp / nmp["dram_dyn"]

    def test_total_energy_ordering(self, out):
        t = out["totals_j"]
        assert t["mondrian"] < t["nmp-perm"] <= t["nmp-rand"] < t["cpu"]


class TestFig9:
    @pytest.fixture(scope="class")
    def out(self):
        return fig9_efficiency.run(scale=SCALE)

    def test_everyone_beats_cpu(self, out):
        for op, series in out["improvements"].items():
            for system, value in series.items():
                assert value > 1.0, (op, system)

    def test_mondrian_most_efficient(self, out):
        for op, series in out["improvements"].items():
            assert series["mondrian"] >= series["nmp-perm"] >= series["nmp"] * 0.99, op

    def test_peak_band_vs_paper(self, out):
        # Paper: up to 28x.
        assert 8 < out["mondrian_peak"] < 100


class TestSec31:
    def test_hmc_endpoints_match_paper(self):
        out = sec31_activation.run()
        assert out["hmc_full_row"] == pytest.approx(0.14, abs=0.04)
        assert out["hmc_8b"] == pytest.approx(0.80, abs=0.08)

    def test_monotone_in_granularity(self):
        out = sec31_activation.run()
        hmc = out["fractions"]["HMC"]
        grans = sorted(hmc)
        assert all(hmc[a] > hmc[b] for a, b in zip(grans, grans[1:]))

    def test_larger_rows_worse(self):
        out = sec31_activation.run()
        assert out["fractions"]["HBM"][64] > out["fractions"]["HMC"][64]
        assert out["fractions"]["WideIO2"][64] > out["fractions"]["HBM"][64]


class TestSec32:
    def test_a57_matches_paper_arithmetic(self):
        out = sec32_mlp.run()
        assert out["a57_mlp"] == pytest.approx(21.3, abs=1.5)
        assert out["a57_bw_gbps"] == pytest.approx(5.3, abs=0.5)

    def test_power_budget_verdicts(self):
        out = sec32_mlp.run()
        d = out["details"]
        assert not d["cortex-a57 (OoO)"]["fits_vault_budget"]
        assert d["krait400 (OoO)"]["fits_vault_budget"]
        assert d["mondrian A35+SIMD"]["fits_vault_budget"]

    def test_mondrian_saturates_peak(self):
        out = sec32_mlp.run()
        assert out["details"]["mondrian A35+SIMD"]["bw_gbps"] == pytest.approx(8.0)


class TestAblations:
    def test_simd_width_monotone(self):
        sweep = ablations.simd_width_sweep(widths=(128, 1024), scale=SCALE)
        assert sweep[1024] <= sweep[128]

    def test_row_buffer_saving_grows(self):
        sweep = ablations.row_buffer_sweep()
        savings = [sweep[rb]["saving"] for rb in sorted(sweep)]
        assert savings[0] < savings[-1]
        assert all(s > 1 for s in savings)

    def test_window_sweep_monotone_and_low(self):
        sweep = ablations.scheduler_window_sweep()
        hit_rates = [sweep[w] for w in sorted(sweep)]
        assert all(a <= b + 1e-9 for a, b in zip(hit_rates, hit_rates[1:]))
        # Practical windows cannot recover the shuffle's locality.
        assert sweep[16] < 0.5
