"""Tests for the cache substrate: set-associative cache, MSHRs,
next-line prefetcher and the two-level hierarchy."""

import pytest

from repro.cache import (
    AccessResult,
    Cache,
    CacheHierarchy,
    MshrFile,
    NextLinePrefetcher,
)


class TestCache:
    def test_miss_then_hit(self):
        c = Cache(size_b=1024, assoc=2, block_b=64)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same block
        assert not c.access(64)  # next block

    def test_lru_eviction(self):
        c = Cache(size_b=2 * 64, assoc=2, block_b=64)  # one set, two ways
        c.access(0)
        c.access(64)
        c.access(0)  # touch 0, making 64 the LRU
        c.access(128)  # evicts 64
        assert c.access(0)
        assert not c.access(64)
        assert c.stats.evictions >= 1

    def test_dirty_writeback(self):
        c = Cache(size_b=2 * 64, assoc=2, block_b=64)
        c.access(0, is_write=True)
        c.access(64)
        c.access(128)  # evicts dirty block 0
        assert c.stats.writebacks == 1

    def test_set_indexing(self):
        c = Cache(size_b=4096, assoc=1, block_b=64)
        # Direct-mapped: addresses one stride apart conflict.
        stride = c.num_sets * 64
        c.access(0)
        c.access(stride)
        assert not c.access(0)  # evicted by the conflicting block

    def test_prefetch_fill(self):
        c = Cache(size_b=1024, assoc=2, block_b=64)
        assert c.fill_prefetch(0)
        assert not c.fill_prefetch(0)  # already present
        assert c.access(0)
        assert c.stats.prefetch_hits == 1

    def test_probe_nondestructive(self):
        c = Cache(size_b=1024, assoc=2, block_b=64)
        assert not c.probe(0)
        c.access(0)
        before = c.stats.hits
        assert c.probe(0)
        assert c.stats.hits == before

    def test_stats_rates(self):
        c = Cache(size_b=1024, assoc=2, block_b=64)
        assert c.stats.hit_rate is None
        c.access(0)
        c.access(0)
        assert c.stats.hit_rate == pytest.approx(0.5)
        assert c.stats.miss_rate == pytest.approx(0.5)

    def test_invalidate_all(self):
        c = Cache(size_b=1024, assoc=2, block_b=64)
        c.access(0)
        c.invalidate_all()
        assert not c.probe(0)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(size_b=0, assoc=1)
        with pytest.raises(ValueError):
            Cache(size_b=100, assoc=3, block_b=64)


class TestMshrFile:
    def test_allocate_and_merge(self):
        m = MshrFile(num_entries=2)
        assert m.allocate(0)
        assert m.allocate(32)  # same block -> merge
        assert m.allocations == 1
        assert m.merges == 1
        assert m.outstanding == 1

    def test_full_stalls(self):
        m = MshrFile(num_entries=1)
        assert m.allocate(0)
        assert not m.allocate(64)
        assert m.stalls == 1

    def test_complete_frees_entry(self):
        m = MshrFile(num_entries=1)
        m.allocate(0)
        assert m.complete(0) == 1
        assert m.allocate(64)

    def test_complete_unknown_raises(self):
        with pytest.raises(KeyError):
            MshrFile(4).complete(0)

    def test_outstanding_blocks(self):
        m = MshrFile(4)
        m.allocate(0)
        m.allocate(128)
        assert m.outstanding_blocks() == {0, 2}


class TestNextLinePrefetcher:
    def test_generates_next_lines(self):
        pf = NextLinePrefetcher(depth=3, block_b=64)
        assert pf.prefetch_addrs(0) == [64, 128, 192]
        assert pf.issued == 3

    def test_limit_respected(self):
        pf = NextLinePrefetcher(depth=3, block_b=64)
        assert pf.prefetch_addrs(0, limit=129) == [64, 128]

    def test_zero_depth(self):
        pf = NextLinePrefetcher(depth=0)
        assert pf.prefetch_addrs(0) == []


class TestCacheHierarchy:
    def make(self, prefetch=0):
        return CacheHierarchy(
            l1_size_b=1024, llc_size_b=16 * 1024, prefetch_depth=prefetch
        )

    def test_levels(self):
        h = self.make()
        assert h.access(0) is AccessResult.MEMORY
        assert h.access(0) is AccessResult.L1
        # Evict from tiny L1 with conflicting traffic, then find in LLC.
        for i in range(1, 64):
            h.access(i * 64)
        assert h.access(0) in (AccessResult.LLC, AccessResult.L1)

    def test_llc_access_counting(self):
        h = self.make()
        h.access(0)  # miss both -> 1 LLC access
        assert h.stats.llc_accesses == 1
        h.access(0)  # L1 hit -> no LLC access
        assert h.stats.llc_accesses == 1

    def test_prefetcher_installs_lines(self):
        h = self.make(prefetch=3)
        h.access(0)
        assert h.access(64) is AccessResult.L1  # prefetched

    def test_sequential_scan_benefits_from_prefetch(self):
        no_pf = self.make(prefetch=0)
        with_pf = self.make(prefetch=3)
        for i in range(256):
            no_pf.access(i * 64)
            with_pf.access(i * 64)
        assert with_pf.stats.memory_accesses < no_pf.stats.memory_accesses

    def test_miss_rate_to_memory(self):
        h = self.make()
        assert h.miss_rate_to_memory() is None
        h.access(0)
        h.access(0)
        assert h.miss_rate_to_memory() == pytest.approx(0.5)

    def test_no_llc_configuration(self):
        h = CacheHierarchy(l1_size_b=1024, llc_size_b=0, prefetch_depth=0)
        assert h.access(0) is AccessResult.MEMORY
        assert h.access(0) is AccessResult.L1
