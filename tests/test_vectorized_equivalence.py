"""Equivalence suite: the vectorized hot paths are byte-identical to the
seed's scalar reference implementations.

The vectorized shuffle engine (fancy-indexed materialization, batched
permutable writes, one barrier update per destination) and the
vectorized merge pass are performance rewrites of per-tuple loops; this
suite pins them against the retained scalar paths across sizes, skew
settings, interleave models and write disciplines -- destinations,
write traces, inbound histograms and barrier state all included -- and
checks that the parallel experiment runtime (``run_all --jobs N``)
reproduces the sequential report exactly.
"""

import os
import subprocess
import sys
from functools import partial
from pathlib import Path

import numpy as np
import pytest

from repro.analytics.tuples import TUPLE_DTYPE, Relation
from repro.memctrl.permutable import (
    PermutableRegionConfig,
    PermutableWriteEngine,
    ShuffleBarrier,
)
from repro.operators.sort_algos import merge_pass, merge_pass_scalar, mergesort
from repro.shuffle.engine import ShuffleEngine
from repro.shuffle.interleave import random_interleave, round_robin_interleave

ROOT = Path(__file__).resolve().parents[1]


def make_sources(rng, num_src, num_dest, n_per_src, skew):
    """Random relations plus destination maps, optionally skewed.

    ``skew`` concentrates destination popularity (a Dirichlet draw with
    small alpha), the regime where per-destination inbound sizes are
    maximally unequal -- the interesting case for the interleave and
    cursor logic.
    """
    sources, dest_maps = [], []
    for s in range(num_src):
        n = int(rng.integers(0, n_per_src)) if n_per_src else 0
        keys = rng.integers(0, 1 << 40, n, dtype=np.uint64)
        sources.append(Relation.from_arrays(keys, keys * np.uint64(7), f"s{s}"))
        if skew and num_dest > 1:
            weights = rng.dirichlet(np.full(num_dest, 0.25))
            dest_maps.append(rng.choice(num_dest, size=n, p=weights).astype(np.int64))
        else:
            dest_maps.append(rng.integers(0, num_dest, n).astype(np.int64))
    return sources, dest_maps


def assert_shuffles_identical(vec, ref):
    for d in range(len(vec.destinations)):
        assert np.array_equal(vec.destinations[d].data, ref.destinations[d].data)
        assert np.array_equal(vec.write_traces[d], ref.write_traces[d])
        assert vec.write_traces[d].dtype == ref.write_traces[d].dtype
        assert np.array_equal(vec.inbound_histograms[d], ref.inbound_histograms[d])
    assert vec.barrier.completion_vector() == ref.barrier.completion_vector()
    for d in range(vec.barrier.num_vaults):
        assert vec.barrier.expected_bytes(d) == ref.barrier.expected_bytes(d)


class TestShuffleEquivalence:
    @pytest.mark.parametrize("permutable", [False, True])
    @pytest.mark.parametrize("skew", [False, True])
    @pytest.mark.parametrize("n_per_src", [8, 200, 2000])
    def test_vectorized_matches_scalar(self, permutable, skew, n_per_src):
        rng = np.random.default_rng(n_per_src + 31 * skew)
        sources, dest_maps = make_sources(rng, num_src=5, num_dest=8,
                                          n_per_src=n_per_src, skew=skew)
        vec = ShuffleEngine(8, permutable=permutable).run(sources, dest_maps)
        ref = ShuffleEngine(8, permutable=permutable, vectorized=False).run(
            sources, dest_maps
        )
        assert_shuffles_identical(vec, ref)

    @pytest.mark.parametrize("permutable", [False, True])
    def test_random_interleave_model(self, permutable):
        rng = np.random.default_rng(7)
        sources, dest_maps = make_sources(rng, 4, 6, 400, skew=True)
        interleave = partial(random_interleave, seed=11)
        vec = ShuffleEngine(6, permutable=permutable, interleave=interleave).run(
            sources, dest_maps
        )
        ref = ShuffleEngine(
            6, permutable=permutable, interleave=interleave, vectorized=False
        ).run(sources, dest_maps)
        assert_shuffles_identical(vec, ref)

    def test_overprovisioned_buffers(self):
        rng = np.random.default_rng(3)
        sources, dest_maps = make_sources(rng, 3, 4, 300, skew=False)
        for over in (1.0, 1.5, 3.0):
            vec = ShuffleEngine(4, permutable=True).run(sources, dest_maps, over)
            ref = ShuffleEngine(4, permutable=True, vectorized=False).run(
                sources, dest_maps, over
            )
            assert_shuffles_identical(vec, ref)

    def test_empty_and_single_destination(self):
        empty = Relation.empty("e")
        for permutable in (False, True):
            vec = ShuffleEngine(1, permutable=permutable).run(
                [empty], [np.empty(0, dtype=np.int64)]
            )
            ref = ShuffleEngine(1, permutable=permutable, vectorized=False).run(
                [empty], [np.empty(0, dtype=np.int64)]
            )
            assert_shuffles_identical(vec, ref)


class TestWriteBatch:
    def config(self, objects=8, object_b=16):
        return PermutableRegionConfig(base=64, size_b=objects * object_b,
                                      object_b=object_b)

    def test_matches_scalar_writes(self):
        batch = PermutableWriteEngine(self.config())
        scalar = PermutableWriteEngine(self.config())
        addrs = batch.write_batch(payloads=["a", "b", "c"])
        expected = [scalar.write(p) for p in ("a", "b", "c")]
        assert addrs.tolist() == expected
        assert batch.drain() == scalar.drain()
        assert batch.bytes_written == scalar.bytes_written

    def test_count_only_batch(self):
        engine = PermutableWriteEngine(self.config())
        addrs = engine.write_batch(count=4, marked_addrs=np.full(4, 64))
        assert addrs.tolist() == [64, 80, 96, 112]
        assert engine.objects_written == 4

    def test_batch_overflow_fills_then_raises(self):
        engine = PermutableWriteEngine(self.config(objects=3))
        with pytest.raises(MemoryError):
            engine.write_batch(count=5)
        # Same state a scalar loop leaves: buffer full, flag raised.
        assert engine.objects_written == 3
        assert engine.overflowed

    def test_batch_rejects_out_of_region_marks(self):
        engine = PermutableWriteEngine(self.config())
        with pytest.raises(ValueError):
            engine.write_batch(count=2, marked_addrs=np.array([64, 4096]))
        with pytest.raises(ValueError):
            engine.write_batch(payloads=["x"], count=2)

    def test_empty_batch(self):
        engine = PermutableWriteEngine(self.config())
        assert engine.write_batch(count=0).tolist() == []
        assert engine.objects_written == 0


class TestBarrierFrozenTotals:
    def test_expected_bytes_before_and_after_seal(self):
        barrier = ShuffleBarrier(2)
        barrier.announce(0, 1, 48)
        assert barrier.expected_bytes(1) == 48  # pre-seal: live sum
        barrier.announce(1, 1, 16)
        assert barrier.expected_bytes(1) == 64
        barrier.seal()
        assert barrier.expected_bytes(1) == 64  # post-seal: frozen
        with pytest.raises(RuntimeError):
            barrier.announce(0, 0, 8)  # totals can never go stale

    def test_deliver_batch_equals_repeated_deliver(self):
        a, b = ShuffleBarrier(2), ShuffleBarrier(2)
        for barrier in (a, b):
            barrier.announce(0, 1, 64)
            barrier.seal()
        a.deliver_batch(1, 64)
        for _ in range(4):
            b.deliver(1, 16)
        assert a.completion_vector() == b.completion_vector() == (True, True)

    def test_deliver_batch_over_delivery_rejected(self):
        barrier = ShuffleBarrier(1)
        barrier.announce(0, 0, 16)
        barrier.seal()
        with pytest.raises(ValueError):
            barrier.deliver_batch(0, 32)


class TestMergePassEquivalence:
    @staticmethod
    def sorted_runs(rng, n, run_len, key_space=64):
        data = np.empty(n, dtype=TUPLE_DTYPE)
        data["key"] = rng.integers(0, key_space, n)  # narrow space: many dups
        data["payload"] = rng.integers(0, 1 << 60, n)
        for pos in range(0, n, run_len):
            chunk = data[pos : pos + run_len]
            data[pos : pos + run_len] = chunk[np.argsort(chunk["key"], kind="stable")]
        return data

    @pytest.mark.parametrize("n", [0, 1, 7, 64, 1000, 4097])
    @pytest.mark.parametrize("run_len", [1, 3, 16, 64])
    def test_vectorized_matches_scalar(self, n, run_len):
        rng = np.random.default_rng(n + run_len)
        data = self.sorted_runs(rng, n, run_len)
        assert np.array_equal(merge_pass(data, run_len), merge_pass_scalar(data, run_len))

    def test_max_key_values_survive_padding(self):
        # Keys equal to the pad sentinel must still merge stably ahead
        # of the pads (they appear earlier in the pair row).
        data = np.empty(5, dtype=TUPLE_DTYPE)
        data["key"] = [1, np.iinfo(np.uint64).max, 0, np.iinfo(np.uint64).max, 2]
        data["payload"] = [10, 11, 12, 13, 14]
        for run_len in (1, 2, 4):
            arranged = data.copy()
            for pos in range(0, len(arranged), run_len):
                chunk = arranged[pos : pos + run_len]
                arranged[pos : pos + run_len] = chunk[
                    np.argsort(chunk["key"], kind="stable")
                ]
            assert np.array_equal(
                merge_pass(arranged, run_len), merge_pass_scalar(arranged, run_len)
            )

    def test_full_mergesort_still_sorts(self):
        rng = np.random.default_rng(5)
        data = self.sorted_runs(rng, 3000, 1, key_space=1 << 40)
        out, stats = mergesort(data)
        assert np.array_equal(np.sort(out["key"]), out["key"])
        assert stats.merge_passes == 12  # ceil(log2(3000))


class TestParallelRunAll:
    """``run_all --jobs N`` must reproduce the sequential report."""

    @staticmethod
    def run_report(*flags):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.run_all", "--fast", *flags],
            capture_output=True,
            text=True,
            cwd=ROOT,
            env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
        )
        assert proc.returncode == 0, proc.stderr
        # Drop the wall-clock line; everything else must be stable.
        return "\n".join(
            line for line in proc.stdout.splitlines() if not line.startswith("Done in")
        )

    def test_jobs4_matches_jobs1(self):
        assert self.run_report("--jobs", "1") == self.run_report("--jobs", "4")

    def test_no_cache_matches_cached(self):
        assert self.run_report() == self.run_report("--no-cache")
