"""Tests for the evaluation fleet: ring, sharded store, router, client.

Property tests (satellite of the fleet PR):

- adding/removing a shard moves only ~1/N of the keys;
- replica sets never collapse to one shard while the fleet has >= 2;
- read-repair converges divergent/missing replicas back to R copies.

Plus live-fleet integration: member SIGKILL failover + respawn, request
hedging past a tarpit member, degradation to in-process evaluation with
every member dead, and the async pipelined client's retry matrix.
"""

import asyncio
import hashlib
import json
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.service.fleet import (
    AsyncServiceClient,
    FLEET_MANIFEST,
    HashRing,
    ShardedResultStore,
    rebalance,
    start_fleet_background,
)
from repro.service.fleet.ring import shard_name
from repro.service.fleet.router import FleetRouter, Member, serve_fleet, spawn_member
from repro.service.fleet.sharded import read_manifest
from repro.service.client import ServiceClient, ServiceError
from repro.service.store import ResultStore, open_store

ROOT = Path(__file__).resolve().parents[1]
GRID = json.loads((ROOT / "tests" / "data" / "sweep_smoke.json").read_text())
GOLDEN = (ROOT / "tests" / "data" / "sweep_smoke_golden.json").read_text()

SCENARIO = {"system": "cpu", "operator": "scan", "model_scale": 50.0,
            "seed": 17, "num_partitions": 8}


def digests(count, salt=""):
    return [hashlib.sha256(f"{salt}{i}".encode()).hexdigest()
            for i in range(count)]


# ---------------------------------------------------------------------------
# HashRing properties
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing([shard_name(i) for i in range(5)], replicas=3)
        b = HashRing([shard_name(i) for i in range(5)], replicas=3)
        for d in digests(200):
            assert a.owners(d) == b.owners(d)

    @pytest.mark.parametrize("shards", [2, 3, 5, 8])
    def test_replica_sets_never_collapse(self, shards):
        """With N >= 2 shards, every digest gets >= 2 distinct owners."""
        ring = HashRing([shard_name(i) for i in range(shards)], replicas=2)
        for d in digests(500, salt=f"n{shards}"):
            owners = ring.owners(d)
            assert len(owners) == 2
            assert len(set(owners)) == 2

    def test_replicas_clamped_to_shard_count(self):
        ring = HashRing(["only"], replicas=2)
        assert ring.replicas == 1
        assert ring.owners(digests(1)[0]) == ["only"]

    @pytest.mark.parametrize("grow", [True, False])
    def test_membership_change_moves_about_one_nth(self, grow):
        """Adding/removing one shard relocates ~1/N of the primaries."""
        n = 8
        small = HashRing([shard_name(i) for i in range(n)], replicas=2)
        large = HashRing([shard_name(i) for i in range(n + 1)], replicas=2)
        before, after = (small, large) if grow else (large, small)
        keys = digests(3000, salt="move")
        moved = sum(
            1 for d in keys if before.primary(d) != after.primary(d)
        )
        fraction = moved / len(keys)
        expected = 1.0 / (n + 1)
        # Well under 2x the ideal share -- a naive mod-N placement
        # would move ~(n/(n+1)) of the keys, an order of magnitude more.
        assert fraction < 2.0 * expected, (fraction, expected)
        assert fraction > 0.0

    def test_primary_is_first_owner(self):
        ring = HashRing([shard_name(i) for i in range(4)], replicas=3)
        for d in digests(50):
            assert ring.primary(d) == ring.owners(d)[0]

    def test_key_point_uses_digest_prefix(self):
        d = "f" * 64
        assert HashRing.key_point(d) == int("f" * 16, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing(["a"], replicas=0)
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_repr(self):
        assert "2 shards" in repr(HashRing(["a", "b"]))


# ---------------------------------------------------------------------------
# ShardedResultStore
# ---------------------------------------------------------------------------


class TestShardedStore:
    def test_create_writes_manifest_and_reopens(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=3, replicas=2)
        manifest = read_manifest(tmp_path)
        assert manifest == {"shards": 3, "replicas": 2, "vnodes": 64}
        again = ShardedResultStore(tmp_path)
        assert again.num_shards == 3 and again.replicas == 2
        assert "shards=3" in repr(store)

    def test_open_store_autodetects_fleet_roots(self, tmp_path):
        ShardedResultStore(tmp_path / "fleet", shards=2)
        assert isinstance(open_store(tmp_path / "fleet"), ShardedResultStore)
        (tmp_path / "plain").mkdir()
        assert isinstance(open_store(tmp_path / "plain"), ResultStore)

    def test_topology_disagreement_rejected(self, tmp_path):
        ShardedResultStore(tmp_path, shards=3, replicas=2)
        with pytest.raises(ValueError, match="disagrees"):
            ShardedResultStore(tmp_path, shards=4)
        with pytest.raises(ValueError, match="disagrees"):
            ShardedResultStore(tmp_path, replicas=3)

    def test_missing_manifest_needs_topology(self, tmp_path):
        with pytest.raises(ValueError, match="fleet.json"):
            ShardedResultStore(tmp_path / "nothing")
        with pytest.raises(ValueError):
            ShardedResultStore(tmp_path / "bad", shards=0)
        with pytest.raises(ValueError):
            ShardedResultStore(tmp_path / "bad", shards=1, replicas=0)

    def test_put_replicates_to_r_owner_shards(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=4, replicas=2)
        for d in digests(30, salt="rep"):
            store.put(d, {"d": d})
            holders = [
                name for name in store.ring.shards
                if store.shard(name).contains(d)
            ]
            assert sorted(holders) == sorted(store.owners(d))
            assert len(holders) == 2
        assert len(store) == 30
        assert list(store.digests()) == sorted(digests(30, salt="rep"))

    def test_get_contains_and_counters(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=2, replicas=2)
        d = digests(1)[0]
        assert store.get(d) is None
        store.put(d, {"x": 1})
        assert store.contains(d)
        assert store.get(d) == {"x": 1}
        counters = store.counters()
        assert counters["puts"] == 1
        assert counters["hits"] == 1 and counters["misses"] == 1
        other = ShardedResultStore(tmp_path)
        other.merge_stats(counters)
        assert other.counters()["puts"] == 1
        stats = store.stats()
        assert stats["entries"] == 1
        assert set(stats["shards"]) == set(store.ring.shards)

    def test_read_repair_restores_missing_replica(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=3, replicas=2)
        d = digests(1, salt="heal")[0]
        store.put(d, {"v": 7})
        primary = store.owners(d)[0]
        store.shard(primary).discard(d)
        assert not store.shard(primary).contains(d)
        assert store.get(d) == {"v": 7}          # served by the replica
        assert store.shard(primary).contains(d)  # ... and healed
        assert store.counters()["read_repairs"] == 1

    def test_read_repair_converges_divergent_replicas(self, tmp_path):
        """Divergent replicas settle to the highest-ranked owner's copy."""
        store = ShardedResultStore(tmp_path, shards=3, replicas=2)
        d = digests(1, salt="diverge")[0]
        store.put(d, {"v": "original"})
        first, second = store.owners(d)
        store.shard(second).put(d, {"v": "stale-divergent"})
        report = rebalance(tmp_path, store=store)
        assert report["divergent_healed"] == 1
        assert store.shard(first).get(d) == {"v": "original"}
        assert store.shard(second).get(d) == {"v": "original"}
        assert store.get(d) == {"v": "original"}

    def test_replica_write_failure_tolerated_and_healed(self, tmp_path, monkeypatch):
        store = ShardedResultStore(tmp_path, shards=2, replicas=2)
        d = digests(1, salt="tolerate")[0]
        victim = store.owners(d)[1]
        broken = store.shard(victim)
        original_put = broken.put
        monkeypatch.setattr(
            broken, "put",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk gone")),
        )
        store.put(d, {"ok": True})  # must not raise: one replica committed
        counters = store.counters()
        assert counters["replica_write_failures"] == 1
        assert counters["pending_repairs"] == 1
        monkeypatch.setattr(broken, "put", original_put)
        assert store.heal() == 1
        assert store.shard(victim).contains(d)
        assert store.counters()["pending_repairs"] == 0
        store.flush()

    def test_put_raises_when_no_replica_commits(self, tmp_path, monkeypatch):
        store = ShardedResultStore(tmp_path, shards=2, replicas=2)
        d = digests(1, salt="allfail")[0]
        for name in store.owners(d):
            monkeypatch.setattr(
                store.shard(name), "put",
                lambda *a, **k: (_ for _ in ()).throw(OSError("gone")),
            )
        with pytest.raises(OSError):
            store.put(d, {"never": "lands"})

    def test_verify_scrubs_and_reports_per_shard(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=2, replicas=2)
        for d in digests(5, salt="verify"):
            store.put(d, {"d": d})
        report = store.verify()
        assert report["entries"] == 5
        assert set(report["shards"]) == set(store.ring.shards)
        assert report["scrub"]["objects"] == 5
        assert report["scrub"]["unreadable"] == 0


# ---------------------------------------------------------------------------
# rebalance
# ---------------------------------------------------------------------------


class TestRebalance:
    def put_fleet(self, root, shards=2, replicas=2, count=40):
        store = ShardedResultStore(root, shards=shards, replicas=replicas)
        keys = digests(count, salt="bal")
        for d in keys:
            store.put(d, {"d": d})
        store.flush()
        return keys

    def test_requires_a_fleet_root(self, tmp_path):
        with pytest.raises(ValueError, match="not a fleet store"):
            rebalance(tmp_path)

    def test_topology_change_excludes_open_handle(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=2)
        with pytest.raises(ValueError, match="not both"):
            rebalance(tmp_path, shards=3, store=store)
        with pytest.raises(ValueError):
            rebalance(tmp_path, shards=0)

    def test_grow_keeps_every_object_readable(self, tmp_path):
        keys = self.put_fleet(tmp_path, shards=2)
        report = rebalance(tmp_path, shards=5)
        assert report["objects"] == len(keys)
        grown = ShardedResultStore(tmp_path)
        assert grown.num_shards == 5
        assert all(grown.get(d) is not None for d in keys)
        # Fully replicated under the new ring: every owner holds a copy.
        for d in keys:
            assert all(grown.shard(o).contains(d) for o in grown.owners(d))

    def test_shrink_drains_orphan_shards(self, tmp_path):
        keys = self.put_fleet(tmp_path, shards=4)
        rebalance(tmp_path, shards=2)
        shrunk = ShardedResultStore(tmp_path)
        assert shrunk.num_shards == 2
        assert all(shrunk.get(d) is not None for d in keys)
        # The orphan shard directories were pruned empty.
        for orphan in (shard_name(2), shard_name(3)):
            assert list(ResultStore(tmp_path / orphan).digests()) == []

    def test_lost_shard_directory_is_reheated(self, tmp_path):
        import shutil

        keys = self.put_fleet(tmp_path, shards=3)
        shutil.rmtree(tmp_path / shard_name(1))
        report = rebalance(tmp_path)
        assert report["replicated"] > 0
        healed = ShardedResultStore(tmp_path)
        assert all(healed.get(d) is not None for d in keys)
        for d in keys:
            assert all(healed.shard(o).contains(d) for o in healed.owners(d))

    def test_unreadable_objects_are_counted_not_fatal(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=2, replicas=2)
        d = digests(1, salt="torn")[0]
        store.put(d, {"will": "tear"})
        store.flush()
        for name in store.owners(d):
            for path in (tmp_path / name / "objects").rglob(f"{d}.json"):
                path.write_bytes(b"\x00 not json \x00")
        report = rebalance(tmp_path)
        assert report["unreadable"] == 1


# ---------------------------------------------------------------------------
# open_store plumbing: scheduler + process-wide selection
# ---------------------------------------------------------------------------


class TestStorePlumbing:
    def test_scheduler_writes_through_a_fleet_store(self, tmp_path):
        from repro.service.scheduler import BatchScheduler

        ShardedResultStore(tmp_path, shards=2, replicas=2)
        scheduler = BatchScheduler(store=str(tmp_path))
        try:
            first = scheduler.submit([SCENARIO]).to_records()
            again = scheduler.submit([SCENARIO]).to_records()
        finally:
            scheduler.close()
        assert first == again
        assert scheduler.stats()["store_hits"] == 1
        assert isinstance(scheduler._store, ShardedResultStore)
        assert len(scheduler._store) == 1

    def test_configure_store_accepts_fleet_roots_and_handles(self, tmp_path):
        from repro.experiments import common

        ShardedResultStore(tmp_path, shards=2)
        previous = common.store_selection()
        try:
            common.configure_store(str(tmp_path))
            assert isinstance(common.active_store(), ShardedResultStore)
            handle = ShardedResultStore(tmp_path)
            common.configure_store(handle)
            assert common.active_store() is handle
        finally:
            common.restore_store_selection(previous)


# ---------------------------------------------------------------------------
# Router units (no subprocesses)
# ---------------------------------------------------------------------------


class TestRouterUnits:
    def test_needs_members(self):
        with pytest.raises(ValueError):
            FleetRouter([])

    def make_router(self, count=3):
        members = [Member(i, "127.0.0.1", 1 + i) for i in range(count)]
        return FleetRouter(members, hedge_after=None)

    def test_scenario_digest_is_the_store_address(self):
        router = self.make_router()
        digest = router._scenario_digest(SCENARIO)
        assert isinstance(digest, str) and len(digest) == 64
        assert router._scenario_digest({"nonsense": True}) is None

    def test_query_scenarios_route_round_robin(self):
        router = self.make_router()
        assert router._scenario_digest({
            "system": "cpu", "operator": "scan", "model_scale": 50.0,
            "seed": 17, "num_partitions": 8, "query": "q1",
        }) is None
        first = router._candidates(None)[0]
        second = router._candidates(None)[0]
        assert first is not second  # the cursor advanced

    def test_candidates_lead_with_owners_and_include_everyone(self):
        router = self.make_router(3)
        digest = router._scenario_digest(SCENARIO)
        candidates = router._candidates(digest)
        assert len(candidates) == 3
        owner_shards = router.ring.owners(digest)
        assert [m.shard for m in candidates[:2]] == owner_shards

    def test_member_describe(self):
        member = Member(1, "127.0.0.1", 2)
        assert member.alive  # no process to have died
        described = member.describe()
        assert described["shard"] == shard_name(1)
        assert described["pid"] is None
        assert described["circuit"] == "closed"


# ---------------------------------------------------------------------------
# Live fleet (subprocess members)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def live_fleet(tmp_path_factory):
    store = tmp_path_factory.mktemp("fleet-store")
    fleet = start_fleet_background(str(store), shards=3, replicas=2)
    yield fleet
    fleet.stop()


class TestLiveFleet:
    def test_ping_reports_fleet_topology(self, live_fleet):
        with ServiceClient(*live_fleet.address) as client:
            pong = client.ping()
        assert pong["service"] == "repro.service.fleet"
        assert pong["shards"] == 3 and pong["replicas"] == 2
        assert len(pong["members"]) == 3

    def test_sweep_matches_the_golden_bytes(self, live_fleet):
        with ServiceClient(*live_fleet.address, retries=3) as client:
            results = client.sweep(GRID)
        assert results.to_json() + "\n" == GOLDEN

    def test_member_sigkill_fails_over_and_respawns(self, live_fleet):
        pid = live_fleet.kill_member(1)
        assert pid is not None
        with ServiceClient(*live_fleet.address, retries=3) as client:
            results = client.sweep(GRID)
            assert results.to_json() + "\n" == GOLDEN
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if live_fleet.router.counters["respawns"] >= 1:
                    break
                time.sleep(0.2)
            stats = client.stats()
        assert stats["router"]["respawns"] >= 1
        assert live_fleet.router.members[1].alive
        assert stats["router"]["degraded"] == 0
        assert stats["store"]["entries"] == 4
        assert "metrics" in stats

    def test_member_pids_lists_live_processes(self, live_fleet):
        pids = live_fleet.member_pids()
        assert len(pids) == 3
        assert all(isinstance(pid, int) for pid in pids)

    def test_daemon_reported_errors_surface_without_failover(self, live_fleet):
        before = live_fleet.router.counters["failovers"]
        with ServiceClient(*live_fleet.address) as client:
            with pytest.raises(ServiceError):
                client.evaluate({"system": "no-such-system",
                                 "operator": "scan", "model_scale": 50.0,
                                 "seed": 17, "num_partitions": 8})
        assert live_fleet.router.counters["failovers"] == before

    def test_unknown_verbs_and_garbage_are_reported(self, live_fleet):
        with ServiceClient(*live_fleet.address) as client:
            with pytest.raises(ServiceError, match="unknown verb"):
                client.call("frobnicate")
            with pytest.raises(ServiceError):
                client.call("sweep")  # missing the grid

    def test_async_client_pipelines_against_the_fleet(self, live_fleet):
        async def drive():
            async with AsyncServiceClient(*live_fleet.address, retries=3,
                                          max_connections=4) as client:
                results = await asyncio.gather(
                    *(client.evaluate(SCENARIO) for _ in range(24))
                )
                pong = await client.ping()
                return results, pong

        results, pong = asyncio.run(drive())
        assert len(results) == 24
        first = results[0].to_records()
        assert all(r.to_records() == first for r in results)
        assert pong["service"] == "repro.service.fleet"


# ---------------------------------------------------------------------------
# Hedging and degradation (hand-built routers)
# ---------------------------------------------------------------------------


class Tarpit(threading.Thread):
    """Accepts connections, reads forever, never answers."""

    def __init__(self):
        super().__init__(daemon=True)
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]

    def run(self):
        conns = []
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                for c in conns:
                    c.close()
                return
            conns.append(conn)

    def stop(self):
        self._listener.close()


class Misbehaver(threading.Thread):
    """Accepts, reads the request, then replies with garbage or EOF."""

    def __init__(self, reply):
        super().__init__(daemon=True)
        self.reply = reply
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]

    def run(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                conn.recv(65536)
                if self.reply:
                    conn.sendall(self.reply)
            except OSError:
                pass
            finally:
                conn.close()

    def stop(self):
        self._listener.close()


class TestFailover:
    @pytest.mark.parametrize("reply", [b"this is not json\n", b""],
                             ids=["garbage", "eof"])
    def test_misbehaving_primary_fails_over(self, tmp_path, reply):
        ShardedResultStore(tmp_path, shards=2, replicas=2)
        scratch = FleetRouter([Member(0, "127.0.0.1", 1),
                               Member(1, "127.0.0.1", 2)], hedge_after=None)
        digest = scratch._scenario_digest(SCENARIO)
        primary_index = int(scratch.ring.primary(digest)[-2:])
        replica_index = 1 - primary_index

        bad = Misbehaver(reply)
        bad.start()
        host, port, proc = spawn_member(str(tmp_path))
        members = [None, None]
        members[primary_index] = Member(primary_index, "127.0.0.1", bad.port)
        members[replica_index] = Member(replica_index, host, port, proc=proc)
        router = FleetRouter(members, hedge_after=None, respawn=False)
        fleet = start_fleet_background(str(tmp_path), router=router)
        try:
            with ServiceClient(*fleet.address, retries=0) as client:
                results = client.evaluate(SCENARIO)
            assert len(results.to_records()) == 1
            assert router.counters["failovers"] >= 1
            # A member without a process cannot be SIGKILLed.
            assert fleet.kill_member(primary_index) is None
        finally:
            fleet.stop()
            bad.stop()


class TestHedging:
    def test_slow_primary_is_hedged_to_the_replica(self, tmp_path):
        ShardedResultStore(tmp_path, shards=2, replicas=2)
        scratch = FleetRouter([Member(0, "127.0.0.1", 1),
                               Member(1, "127.0.0.1", 2)], hedge_after=None)
        digest = scratch._scenario_digest(SCENARIO)
        primary_index = int(scratch.ring.primary(digest)[-2:])
        replica_index = 1 - primary_index

        tarpit = Tarpit()
        tarpit.start()
        host, port, proc = spawn_member(str(tmp_path))
        members = [None, None]
        members[primary_index] = Member(primary_index, "127.0.0.1", tarpit.port)
        members[replica_index] = Member(replica_index, host, port, proc=proc)
        router = FleetRouter(members, hedge_after=0.1, respawn=False)
        fleet = start_fleet_background(str(tmp_path), router=router)
        try:
            with ServiceClient(*fleet.address, retries=0) as client:
                results = client.evaluate(SCENARIO)
            assert len(results.to_records()) == 1
            assert router.counters["hedges"] >= 1
            assert router.counters["hedge_wins"] >= 1
        finally:
            fleet.stop()
            tarpit.stop()


class TestDegradation:
    def test_every_member_dead_degrades_to_local(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=2, replicas=2)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead = probe.getsockname()[1]
        members = [Member(0, "127.0.0.1", dead), Member(1, "127.0.0.1", dead)]
        router = FleetRouter(members, store=store, hedge_after=0.05,
                             respawn=False)
        fleet = start_fleet_background(str(tmp_path), router=router)
        try:
            with ServiceClient(*fleet.address, retries=0) as client:
                results = client.evaluate(SCENARIO)
            assert len(results.to_records()) == 1
            assert router.counters["degraded"] == 1
            assert router.counters["member_failures"] >= 2
            assert len(store) == 1  # the degraded evaluation still stored
        finally:
            fleet.stop()


# ---------------------------------------------------------------------------
# serve_fleet foreground entry point
# ---------------------------------------------------------------------------


class TestServeFleet:
    def test_requires_a_store(self):
        with pytest.raises(ValueError, match="--store"):
            serve_fleet(store=None)

    def test_foreground_serves_until_shutdown(self, tmp_path):
        announced = {}

        def announce(host, port):
            announced["address"] = (host, port)

        thread = threading.Thread(
            target=serve_fleet,
            kwargs=dict(store=str(tmp_path), shards=2, replicas=2,
                        port=0, announce=announce),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 60
        while "address" not in announced and time.monotonic() < deadline:
            time.sleep(0.05)
        assert "address" in announced, "serve_fleet never announced"
        host, port = announced["address"]
        with ServiceClient(host, port) as client:
            assert client.ping()["shards"] == 2
            client.shutdown()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert read_manifest(tmp_path)[
            "shards"] == 2  # the fleet created its store


# ---------------------------------------------------------------------------
# AsyncServiceClient retry matrix
# ---------------------------------------------------------------------------


class TestAsyncClient:
    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncServiceClient(retries=-1)
        with pytest.raises(ValueError):
            AsyncServiceClient(max_connections=0)

    def test_retries_exhaust_on_a_dead_port(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead = probe.getsockname()[1]

        async def drive():
            async with AsyncServiceClient("127.0.0.1", dead, retries=1,
                                          timeout=2.0) as client:
                await client.ping()

        with pytest.raises((OSError, ConnectionError)):
            asyncio.run(drive())

    def test_shutdown_is_never_retried(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead = probe.getsockname()[1]

        async def drive():
            client = AsyncServiceClient("127.0.0.1", dead, retries=5,
                                        timeout=2.0)
            try:
                await client.shutdown()
            finally:
                await client.close()

        with pytest.raises((OSError, ConnectionError)):
            asyncio.run(drive())

    def test_deadline_expires_against_a_tarpit(self):
        tarpit = Tarpit()
        tarpit.start()
        try:
            async def drive():
                async with AsyncServiceClient("127.0.0.1", tarpit.port,
                                              retries=0) as client:
                    await client.ping(
                    ) if False else await client.call("ping", deadline=0.3)

            with pytest.raises(asyncio.TimeoutError):
                asyncio.run(drive())
        finally:
            tarpit.stop()

    def test_daemon_restart_between_calls_is_invisible(self, tmp_path):
        from repro.service.daemon import serve_background

        first = serve_background(store=str(tmp_path / "store"))
        port = first.port

        async def before(client):
            assert (await client.ping())["service"] == "repro.service"

        async def after(client):
            assert (await client.ping())["pid"] is not None
            return client.resilience["reconnects"]

        async def drive():
            # One pooled connection, so the second ping must reuse the
            # now-stale transport rather than opening a fresh slot.
            async with AsyncServiceClient("127.0.0.1", port, retries=2,
                                          max_connections=1) as client:
                await before(client)
                # Restart the daemon on the same port: the pooled
                # connection is now stale; the resend must be free.
                first.stop()
                second = serve_background(port=port,
                                          store=str(tmp_path / "store"))
                try:
                    return await after(client)
                finally:
                    second.stop()

        reconnects = asyncio.run(drive())
        assert reconnects == 1

    def test_service_errors_are_terminal(self, tmp_path):
        from repro.service.daemon import serve_background

        handle = serve_background(store=str(tmp_path / "store"))
        try:
            async def drive():
                async with AsyncServiceClient("127.0.0.1", handle.port,
                                              retries=3) as client:
                    with pytest.raises(ServiceError, match="unknown verb"):
                        await client.call("frobnicate")
                    assert client.resilience["retries"] == 0
                    stats = await client.stats()
                    assert "requests" in stats
                    results = await client.sweep(GRID)
                    assert results.to_json() + "\n" == GOLDEN

            asyncio.run(drive())
        finally:
            handle.stop()
